//! The simulated interconnect: a set of timed inboxes plus the cost model.
//!
//! The fabric is a dumb, *not necessarily FIFO* transport — the same
//! contract GASNet gives the CAF 2.0 runtime. Latency and bandwidth come
//! from [`NetworkModel`]: a message of `b` payload bytes sent at `t`
//! becomes visible to the target at
//! `t + injection_overhead + latency + b·byte_cost` (plus deterministic
//! pseudo-jitter when `non_fifo` reordering is enabled). Delivery
//! acknowledgements, event notifications, collective stages — everything
//! above this layer is just a message.
//!
//! Backpressure: when a target inbox holds more than
//! `inbox_capacity` undelivered messages, the sender parks on the inbox's
//! space condvar (woken by drains) — modelling GASNet flow control, which
//! the paper suspects behind the Fig. 14 large-bunch anomaly.
//!
//! Reliability: by default the wire is lossless and the fabric adds zero
//! protocol overhead. With an active [`FaultPlan`] the wire drops,
//! duplicates, delays, and stalls traffic per the plan's seeded schedule,
//! and every remote message is routed through the ack/retry sublayer
//! ([`crate::reliable`]): per-link sequence numbers, receiver-side dedup,
//! ack timers with exponential backoff, and a capped retry budget whose
//! exhaustion is surfaced to the runtime's no-progress watchdog.
//!
//! Fail-stop crashes: a [`CrashFault`](caf_core::fault::CrashFault) in the
//! plan (or a runtime call to [`Fabric::mark_crashed`], e.g. from a panic
//! boundary) silences an image mid-run — every wire transmission touching
//! it is destroyed from that point on. When failure detection is engaged
//! ([`Fabric::with_chaos`] with [`FailureParams`]), each image pumps
//! heartbeats on idle links and drives a per-image
//! [`FailureDetectorState`] from heartbeat deadlines *and* retry-budget
//! exhaustion; confirmed deaths surface through
//! [`Fabric::poll_failures`], and traffic from a confirmed-dead
//! incarnation is discarded by the posthumous filter.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use caf_core::config::NetworkModel;
use caf_core::failure::{FailureDetectorState, FailureEvent, FailureParams, PeerHealth};
use caf_core::fault::{FaultPlan, RetryPolicy};
use caf_core::ids::ImageId;
use caf_core::rng::splitmix64_hash;
use parking_lot::Mutex;

use crate::inbox::Inbox;
use crate::reliable::{Outstanding, RecvState, SenderState, Wire, ACK_BYTES, HEARTBEAT_BYTES};
use crate::stats::FabricStats;

/// Incarnation stamped on every image's traffic. Restarts (which would
/// bump it) are not implemented; the constant still flows through the
/// protocol so the posthumous filter exercises the real comparison.
const FIRST_INCARNATION: u64 = 1;

/// A death confirmed by (or reported to) an image's failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfirmedDown {
    /// The dead image.
    pub peer: usize,
    /// Its last known incarnation; traffic stamped `<=` this is posthumous.
    pub incarnation: u64,
    /// Wall-clock from the crash firing on the wire to this observer's
    /// confirmation. `None` when the crash origin is unknown to the
    /// fabric (e.g. the death was learned from a broadcast).
    pub latency: Option<Duration>,
}

/// Per-observing-image failure-detection state.
struct Observer {
    detector: FailureDetectorState,
    /// Last heartbeat emission per peer link.
    last_hb: Vec<Instant>,
    /// Confirmed deaths not yet drained by [`Fabric::poll_failures`].
    confirmed: VecDeque<ConfirmedDown>,
}

/// Heartbeat + failure-detection state, engaged by
/// [`Fabric::with_chaos`] when failure params are supplied.
struct FailureLayer {
    params: FailureParams,
    observers: Vec<Mutex<Observer>>,
}

/// Fault-injection schedule plus the reliable-delivery state answering it.
struct Chaos<M> {
    plan: FaultPlan,
    retry: RetryPolicy,
    /// Fabric creation time — stall windows are relative to this.
    epoch: Instant,
    /// Per-sending-image retry state (indexed by sender).
    senders: Vec<Mutex<SenderState<M>>>,
    /// Per-receiving-image dedup state (indexed by receiver).
    receivers: Vec<Mutex<RecvState>>,
    /// Heartbeats + failure detectors, when engaged.
    failure: Option<FailureLayer>,
}

/// Retransmission batch drained under the sender lock: destination,
/// sequence, shared payload slot, payload bytes.
type Resend<M> = Vec<(ImageId, u64, Arc<Mutex<Option<M>>>, usize)>;

/// The interconnect between `n` images, carrying messages of type `M`.
pub struct Fabric<M> {
    inboxes: Vec<Inbox<Wire<M>>>,
    model: NetworkModel,
    non_fifo: bool,
    seq: AtomicU64,
    stats: FabricStats,
    chaos: Option<Chaos<M>>,
    /// Fail-stop flags, one per image. Set by a
    /// [`CrashFault`](caf_core::fault::CrashFault) firing on the wire or
    /// by [`Fabric::mark_crashed`]; once set, every
    /// transmission touching the image is destroyed. Allocated in every
    /// mode (panic boundaries crash images even without a fault plan).
    crashed: Vec<AtomicBool>,
    /// When each crash fired — the base for detection-latency reporting.
    crashed_at: Vec<Mutex<Option<Instant>>>,
    /// Set when the runtime aborts (e.g. the no-progress watchdog fired):
    /// releases senders parked under backpressure so their threads can be
    /// joined instead of sleeping on a drain that will never come.
    halted: AtomicBool,
}

impl<M: Send> Fabric<M> {
    /// A fabric over `n` images with the given cost model. `non_fifo`
    /// enables deterministic pseudo-random reordering of same-pair
    /// messages (delivery deadlines get up to `latency/2` extra skew).
    pub fn new(n: usize, model: NetworkModel, non_fifo: bool) -> Arc<Self> {
        Fabric::build(n, model, non_fifo, None, None)
    }

    /// A fabric whose wire misbehaves per `plan` and whose delivery layer
    /// answers with `retry`. All remote traffic is routed through the
    /// ack/retry sublayer — even when the plan is currently inactive, so
    /// protocol overhead can be measured in isolation.
    pub fn with_faults(
        n: usize,
        model: NetworkModel,
        non_fifo: bool,
        plan: FaultPlan,
        retry: RetryPolicy,
    ) -> Arc<Self> {
        Fabric::build(n, model, non_fifo, Some((plan, retry)), None)
    }

    /// [`Fabric::with_faults`] plus optional fail-stop failure detection:
    /// with `failure` set, every image pumps heartbeats on idle links,
    /// runs a [`FailureDetectorState`] over its peers, and surfaces
    /// confirmed deaths through [`Fabric::poll_failures`].
    pub fn with_chaos(
        n: usize,
        model: NetworkModel,
        non_fifo: bool,
        plan: FaultPlan,
        retry: RetryPolicy,
        failure: Option<FailureParams>,
    ) -> Arc<Self> {
        Fabric::build(n, model, non_fifo, Some((plan, retry)), failure)
    }

    fn build(
        n: usize,
        model: NetworkModel,
        non_fifo: bool,
        faults: Option<(FaultPlan, RetryPolicy)>,
        failure: Option<FailureParams>,
    ) -> Arc<Self> {
        let epoch = Instant::now();
        Arc::new(Fabric {
            inboxes: (0..n).map(|_| Inbox::new()).collect(),
            model,
            non_fifo,
            seq: AtomicU64::new(0),
            stats: FabricStats::default(),
            chaos: faults.map(|(plan, retry)| Chaos {
                plan,
                retry,
                epoch,
                senders: (0..n).map(|_| Mutex::new(SenderState::new(n))).collect(),
                receivers: (0..n).map(|_| Mutex::new(RecvState::new(n))).collect(),
                failure: failure.map(|params| FailureLayer {
                    observers: (0..n)
                        .map(|me| {
                            let mut detector = FailureDetectorState::new(params.clone());
                            for peer in (0..n).filter(|&p| p != me) {
                                detector.monitor(peer, Duration::ZERO);
                            }
                            Mutex::new(Observer {
                                detector,
                                last_hb: vec![epoch; n],
                                confirmed: VecDeque::new(),
                            })
                        })
                        .collect(),
                    params,
                }),
            }),
            crashed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            crashed_at: (0..n).map(|_| Mutex::new(None)).collect(),
            halted: AtomicBool::new(false),
        })
    }

    /// Number of images attached to the fabric.
    pub fn size(&self) -> usize {
        self.inboxes.len()
    }

    /// The cost model in force.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Aggregate traffic statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Whether the reliable-delivery (chaos) layer is engaged.
    pub fn faults_active(&self) -> bool {
        self.chaos.is_some()
    }

    /// Whether heartbeat-based failure detection is engaged.
    pub fn failure_active(&self) -> bool {
        self.chaos.as_ref().is_some_and(|c| c.failure.is_some())
    }

    /// The failure-detection windows in force, if engaged.
    pub fn failure_params(&self) -> Option<&FailureParams> {
        self.chaos.as_ref().and_then(|c| c.failure.as_ref()).map(|fl| &fl.params)
    }

    /// Whether `image` has fail-stopped (crash fault fired, or the
    /// runtime reported it via [`Fabric::mark_crashed`]). An image thread
    /// observing its own flag must unwind instead of continuing to run.
    pub fn is_crashed(&self, image: ImageId) -> bool {
        self.crashed[image.index()].load(Ordering::Acquire)
    }

    /// Every image whose fail-stop flag is set.
    pub fn crashed_images(&self) -> Vec<usize> {
        (0..self.size()).filter(|&i| self.is_crashed(ImageId(i))).collect()
    }

    /// Reports `image` as fail-stopped from outside the fault plan — the
    /// runtime's panic boundary calls this when an image closure panics.
    /// Idempotent; wakes every parked image so senders re-check flags.
    pub fn mark_crashed(&self, image: ImageId) {
        self.crashed[image.index()].store(true, Ordering::Release);
        self.crashed_at[image.index()].lock().get_or_insert_with(Instant::now);
        for inbox in &self.inboxes {
            inbox.poke();
        }
    }

    /// Records at `observer`'s detector a death learned externally (an
    /// `ImageDown` broadcast): engages the posthumous filter there
    /// without waiting out the observer's own suspect window.
    pub fn mark_peer_dead(&self, observer: ImageId, peer: usize, incarnation: u64) {
        if let Some(chaos) = &self.chaos {
            if let Some(fl) = &chaos.failure {
                let elapsed = chaos.epoch.elapsed();
                fl.observers[observer.index()].lock().detector.mark_dead(
                    peer,
                    incarnation,
                    elapsed,
                );
            }
        }
    }

    /// Drains the deaths `image`'s detector has confirmed since the last
    /// poll (pumping the detector first, so an image that only polls
    /// still advances its deadlines).
    pub fn poll_failures(&self, image: ImageId) -> Vec<ConfirmedDown> {
        self.pump_retries(image);
        let Some(fl) = self.chaos.as_ref().and_then(|c| c.failure.as_ref()) else {
            return Vec::new();
        };
        fl.observers[image.index()].lock().confirmed.drain(..).collect()
    }

    /// `image`'s detector counters: `(suspects_raised, false_suspects)`.
    /// Zero when failure detection is off.
    pub fn failure_metrics(&self, image: ImageId) -> (u64, u64) {
        match self.chaos.as_ref().and_then(|c| c.failure.as_ref()) {
            Some(fl) => {
                let obs = fl.observers[image.index()].lock();
                (obs.detector.suspects_raised(), obs.detector.false_suspects())
            }
            None => (0, 0),
        }
    }

    /// Announces `image`'s clean exit to every surviving detector, so the
    /// silence of a normal staggered shutdown is never read as a crash.
    pub fn retire(&self, image: ImageId) {
        if let Some(chaos) = &self.chaos {
            if let Some(fl) = &chaos.failure {
                let elapsed = chaos.epoch.elapsed();
                for (me, obs) in fl.observers.iter().enumerate() {
                    if me != image.index() {
                        obs.lock().detector.retire(image.index(), elapsed);
                    }
                }
            }
        }
    }

    /// Discards every queued message in every inbox (graceful team-wide
    /// drain after a failure verdict), returning the number dropped.
    pub fn drain_inboxes(&self) -> usize {
        self.inboxes.iter().map(|inbox| inbox.drain()).sum()
    }

    /// Unacknowledged reliable messages currently owned by `image` as a
    /// sender (its retry queue depth). Zero without a fault layer.
    pub fn retry_backlog(&self, image: ImageId) -> usize {
        self.chaos.as_ref().map_or(0, |c| c.senders[image.index()].lock().backlog())
    }

    /// Aborts the fabric: flow control stops parking senders (over-capacity
    /// sends are admitted immediately) and every image is poked awake.
    /// Used by the runtime when tearing down after a detected stall —
    /// communication threads blocked in [`Fabric::send`] must be joinable.
    /// Irreversible.
    pub fn halt(&self) {
        self.halted.store(true, Ordering::Release);
        for inbox in &self.inboxes {
            inbox.poke();
        }
    }

    /// Whether [`Fabric::halt`] has been called.
    pub fn halted(&self) -> bool {
        self.halted.load(Ordering::Acquire)
    }

    /// Sends `msg` with a simulated payload of `payload_bytes` from `from`
    /// to `to`. Blocks the caller under backpressure. Local (self) sends
    /// still traverse the model's loopback (zero latency, injection cost
    /// only) so semantics don't change between local and remote targets.
    pub fn send(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        // Backpressure: park while the target inbox is over capacity.
        // Self-sends are exempt: the sender is the only drainer of its
        // own inbox, so throttling it can never make progress.
        if let Some(cap) = self.model.inbox_capacity.filter(|_| from != to) {
            let inbox = &self.inboxes[to.index()];
            // Re-probe interval: a drain notification wakes us instantly;
            // the timeout only bounds missed-wakeup / abort latency and
            // lets a parked sender keep pumping its retransmit timers.
            let quantum = if self.model.backpressure_stall > Duration::ZERO {
                self.model.backpressure_stall
            } else {
                Duration::from_micros(100)
            };
            // A crashed endpoint ends the park: a dead receiver never
            // drains its inbox, and a dead sender has nothing to deliver —
            // either way the message is destined for the wire-level
            // crash drop, so admit it immediately.
            while inbox.len() >= cap
                && !self.halted()
                && !self.is_crashed(to)
                && !self.is_crashed(from)
            {
                self.stats.note_backpressure_stall();
                self.pump_retries(from);
                inbox.wait_space_until(cap, Instant::now() + quantum);
            }
        }
        self.inject(from, to, payload_bytes, msg);
    }

    /// Attempts to send under flow control without blocking: returns the
    /// message back if the target inbox is over capacity. Callers that
    /// can make progress while refused (an image thread draining its own
    /// inbox — GASNet's poll-while-blocked rule for requests) should loop
    /// on this instead of [`Fabric::send`], whose parked stall can
    /// deadlock if every potential drainer blocks simultaneously.
    pub fn try_send(
        &self,
        from: ImageId,
        to: ImageId,
        payload_bytes: usize,
        msg: M,
    ) -> Result<(), M> {
        if let Some(cap) = self.model.inbox_capacity.filter(|_| from != to) {
            // A crashed target's inbox never drains; don't refuse forever —
            // admit the message and let the wire-level crash drop eat it.
            if self.inboxes[to.index()].len() >= cap && !self.is_crashed(to) {
                self.stats.note_backpressure_stall();
                return Err(msg);
            }
        }
        self.inject(from, to, payload_bytes, msg);
        Ok(())
    }

    /// Sends without flow control. For *reply-class* traffic only —
    /// delivery acknowledgements, event notifications, completion
    /// advances, collective control hops. GASNet gives AM replies the
    /// same exemption: a handler must be able to reply without blocking,
    /// otherwise two images whose inboxes are both full of requests
    /// deadlock exchanging acknowledgements.
    pub fn send_unthrottled(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        self.inject(from, to, payload_bytes, msg);
    }

    /// Logical send: counts the message once and routes it either raw
    /// (lossless wire, or loopback) or through the reliable envelope.
    fn inject(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        self.stats.note_send(payload_bytes);
        match &self.chaos {
            // Self-sends bypass the wire — and therefore the fault layer —
            // in both modes.
            Some(chaos) if from != to => {
                let payload = Arc::new(Mutex::new(Some(msg)));
                let link_seq = {
                    let mut st = chaos.senders[from.index()].lock();
                    let seq = st.next_seq[to.index()];
                    st.next_seq[to.index()] = seq + 1;
                    st.outstanding[to.index()].push_back(Outstanding {
                        link_seq: seq,
                        payload: Arc::clone(&payload),
                        bytes: payload_bytes,
                        attempts: 1,
                        next_retry: Instant::now() + chaos.retry.timeout_after(1),
                    });
                    seq
                };
                self.transmit(from, to, payload_bytes, Wire::Data { from, link_seq, payload });
            }
            _ => self.transmit(from, to, payload_bytes, Wire::Raw(msg)),
        }
    }

    /// Wire-level transmission: applies the cost model, non-FIFO jitter,
    /// and — under a fault plan — drops, duplicates, delay spikes, and
    /// straggler deferral. Every call is one die roll; retransmissions of
    /// the same logical message roll independently.
    fn transmit(&self, from: ImageId, to: ImageId, payload_bytes: usize, wire: Wire<M>) {
        let inbox = &self.inboxes[to.index()];
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Scheduled crashes fire on the first transmission at or past
        // their trigger sequence — the same wire-seq keying both
        // substrates use, so a crash point reproduces across runs.
        if let Some(chaos) = &self.chaos {
            for c in &chaos.plan.crashes {
                if seq >= c.at_seq && !self.crashed[c.image].load(Ordering::Acquire) {
                    self.crashed[c.image].store(true, Ordering::Release);
                    self.crashed_at[c.image].lock().get_or_insert_with(Instant::now);
                }
            }
        }
        // Fail-stop: a dead image neither injects nor receives. The
        // arming transmission itself is already subject to the drop.
        if self.is_crashed(from) || self.is_crashed(to) {
            self.stats.note_crash_drop();
            return;
        }
        let mut delay = self.model.injection_overhead;
        if from != to {
            delay += self.model.wire_time(payload_bytes);
            if self.non_fifo && !self.model.latency.is_zero() {
                let span = (self.model.latency / 2).as_nanos() as u64;
                if span > 0 {
                    delay += Duration::from_nanos(splitmix64_hash(seq) % span);
                }
            }
        }
        if let Some(chaos) = self.chaos.as_ref().filter(|_| from != to) {
            let elapsed = chaos.epoch.elapsed();
            // A stalled endpoint defers traffic until its window closes:
            // a descheduled sender cannot inject, a descheduled receiver
            // cannot run handlers.
            delay += chaos.plan.stall_extra(from.index(), elapsed);
            delay += chaos.plan.stall_extra(to.index(), elapsed);
            let decision = chaos.plan.decide(from.index(), to.index(), seq);
            if decision.delay_spike {
                delay += chaos.plan.spike_delay;
            }
            if decision.drop {
                self.stats.note_wire_drop();
                return; // vanishes; the retry timer will answer
            }
            if decision.duplicate {
                if let Some(copy) = wire.clone_protocol() {
                    self.stats.note_wire_dup();
                    let extra = self.model.latency / 2 + Duration::from_micros(5);
                    inbox.push(Instant::now() + delay + extra, copy);
                }
            }
        }
        inbox.push(Instant::now() + delay, wire);
    }

    /// Retransmits every overdue outstanding message owned by `image`,
    /// advancing ack timers with exponential backoff and abandoning
    /// messages whose retry budget is exhausted. Called from the sending
    /// image's own fabric entry points (lazy pumping — the fabric has no
    /// thread of its own).
    fn pump_retries(&self, image: ImageId) {
        let Some(chaos) = &self.chaos else { return };
        if self.is_crashed(image) {
            return; // the dead retransmit nothing and heartbeat no one
        }
        let now = Instant::now();
        // Peers this image's detector has confirmed dead: their pending
        // retransmissions are dead letters — abandon them instead of
        // burning the retry budget against a black hole.
        let dead: Vec<usize> = match &chaos.failure {
            Some(fl) => fl.observers[image.index()]
                .lock()
                .detector
                .dead_peers()
                .into_iter()
                .map(|(peer, _)| peer)
                .collect(),
            None => Vec::new(),
        };
        let mut resend: Resend<M> = Vec::new();
        let mut exhausted: Vec<usize> = Vec::new();
        {
            let mut st = chaos.senders[image.index()].lock();
            for (dest, queue) in st.outstanding.iter_mut().enumerate() {
                if dead.contains(&dest) {
                    for _ in 0..queue.len() {
                        self.stats.note_crash_drop();
                    }
                    queue.clear();
                    continue;
                }
                queue.retain_mut(|o| {
                    if o.next_retry > now {
                        return true;
                    }
                    if o.attempts > chaos.retry.max_retries {
                        // Budget spent (original + max_retries resends):
                        // abandon. The message may still be in flight —
                        // if it truly never arrives, the runtime's
                        // watchdog turns the quiet into a diagnostic.
                        self.stats.note_retry_exhausted();
                        exhausted.push(dest);
                        return false;
                    }
                    o.attempts += 1;
                    o.next_retry = now + chaos.retry.timeout_after(o.attempts);
                    resend.push((ImageId(dest), o.link_seq, Arc::clone(&o.payload), o.bytes));
                    true
                });
            }
        }
        if let Some(fl) = &chaos.failure {
            if !exhausted.is_empty() {
                // A spent retry budget is a strong death hint: skip the
                // silence deadline and go straight to the suspect window.
                let elapsed = chaos.epoch.elapsed();
                let mut obs = fl.observers[image.index()].lock();
                for dest in exhausted {
                    obs.detector.on_retry_exhausted(dest, elapsed);
                }
            }
        }
        for (dest, link_seq, payload, bytes) in resend {
            self.stats.note_retry();
            self.transmit(image, dest, bytes, Wire::Data { from: image, link_seq, payload });
        }
        self.pump_failure(image, chaos, now);
    }

    /// Failure-detection duty cycle for `image`, run from its own fabric
    /// calls (the same lazy-pumping discipline as retransmission):
    /// heartbeat every peer whose link has been idle past the period,
    /// then advance the detector's deadlines and queue any confirmed
    /// deaths for [`Fabric::poll_failures`].
    fn pump_failure(&self, image: ImageId, chaos: &Chaos<M>, now: Instant) {
        let Some(fl) = &chaos.failure else { return };
        let elapsed = now.saturating_duration_since(chaos.epoch);
        let mut beats: Vec<usize> = Vec::new();
        {
            let mut obs = fl.observers[image.index()].lock();
            for peer in (0..self.size()).filter(|&p| p != image.index()) {
                // No point heartbeating the confirmed dead or retired.
                if matches!(
                    obs.detector.health(peer),
                    Some(PeerHealth::Dead) | Some(PeerHealth::Retired)
                ) {
                    continue;
                }
                if now.saturating_duration_since(obs.last_hb[peer]) >= fl.params.heartbeat_period {
                    obs.last_hb[peer] = now;
                    beats.push(peer);
                }
            }
            for ev in obs.detector.tick(elapsed) {
                if let FailureEvent::Confirmed { peer, incarnation, .. } = ev {
                    let latency =
                        (*self.crashed_at[peer].lock()).map(|at| now.saturating_duration_since(at));
                    obs.confirmed.push_back(ConfirmedDown { peer, incarnation, latency });
                }
            }
        }
        for peer in beats {
            self.stats.note_heartbeat();
            self.transmit(
                image,
                ImageId(peer),
                HEARTBEAT_BYTES,
                Wire::Heartbeat { from: image, incarnation: FIRST_INCARNATION },
            );
        }
    }

    /// Earliest retransmission deadline owed by `image`, for park
    /// clamping (a blocked sender must wake in time to retransmit).
    fn next_retry_at(&self, image: ImageId) -> Option<Instant> {
        self.chaos
            .as_ref()
            .and_then(|c| c.senders[image.index()].lock().next_retry_at())
    }

    /// Protocol processing of one popped wire envelope at `image`.
    /// Returns the payload if this envelope surfaces a fresh message.
    fn open(&self, image: ImageId, wire: Wire<M>) -> Option<M> {
        match wire {
            Wire::Raw(msg) => {
                self.stats.note_delivered();
                Some(msg)
            }
            Wire::Data { from, link_seq, payload } => {
                let chaos = self.chaos.as_ref().expect("Data frames only exist under chaos");
                // Posthumous filter: data from a confirmed-dead
                // incarnation (a retransmit buffered in flight when the
                // sender died) must not be acked, delivered, or allowed
                // to resurrect work under a poisoned finish epoch.
                if !self.note_life_sign(chaos, image, from, FIRST_INCARNATION) {
                    self.stats.note_posthumous_drop();
                    return None;
                }
                // Always (re-)acknowledge — the previous ack may itself
                // have been dropped. Acks ride the faulty wire too.
                self.stats.note_ack();
                self.transmit(image, from, ACK_BYTES, Wire::Ack { from: image, link_seq });
                let fresh =
                    chaos.receivers[image.index()].lock().trackers[from.index()].note(link_seq);
                if fresh {
                    let msg = payload.lock().take();
                    debug_assert!(msg.is_some(), "fresh sequence with an empty payload slot");
                    if msg.is_some() {
                        self.stats.note_delivered();
                    }
                    msg
                } else {
                    self.stats.note_dup_discarded();
                    None
                }
            }
            Wire::Ack { from, link_seq } => {
                if let Some(chaos) = &self.chaos {
                    if !self.note_life_sign(chaos, image, from, FIRST_INCARNATION) {
                        self.stats.note_posthumous_drop();
                        return None;
                    }
                    let mut st = chaos.senders[image.index()].lock();
                    let queue = &mut st.outstanding[from.index()];
                    if let Some(pos) = queue.iter().position(|o| o.link_seq == link_seq) {
                        queue.remove(pos);
                    }
                }
                None
            }
            Wire::Heartbeat { from, incarnation } => {
                if let Some(chaos) = &self.chaos {
                    if !self.note_life_sign(chaos, image, from, incarnation) {
                        self.stats.note_posthumous_drop();
                    }
                }
                None
            }
        }
    }

    /// Feeds one received frame into `image`'s failure detector as a life
    /// sign from `from`. Returns whether the frame should be accepted
    /// (`false` = posthumous). Always `true` without a failure layer.
    fn note_life_sign(
        &self,
        chaos: &Chaos<M>,
        image: ImageId,
        from: ImageId,
        incarnation: u64,
    ) -> bool {
        match &chaos.failure {
            Some(fl) => {
                let elapsed = chaos.epoch.elapsed();
                fl.observers[image.index()].lock().detector.on_life_sign(
                    from.index(),
                    incarnation,
                    elapsed,
                )
            }
            None => true,
        }
    }

    /// Non-blocking receive for `image`: the earliest due message, if any.
    /// Also pumps `image`'s retransmission timers.
    pub fn try_recv(&self, image: ImageId) -> Option<M> {
        self.pump_retries(image);
        while let Some(wire) = self.inboxes[image.index()].try_pop_due() {
            if let Some(msg) = self.open(image, wire) {
                return Some(msg);
            }
        }
        None
    }

    /// Blocking receive for `image` with a deadline. Protocol frames
    /// (acks, filtered duplicates) are consumed without surfacing; parks
    /// are clamped to the next retransmission deadline.
    pub fn recv_until(&self, image: ImageId, deadline: Instant) -> Option<M> {
        loop {
            self.pump_retries(image);
            let park = self.next_retry_at(image).map_or(deadline, |r| r.min(deadline));
            match self.inboxes[image.index()].pop_due_until(park) {
                Some(wire) => {
                    if let Some(msg) = self.open(image, wire) {
                        return Some(msg);
                    }
                }
                None => {
                    if Instant::now() >= deadline {
                        return None;
                    }
                    // Woke early to pump retries; loop.
                }
            }
        }
    }

    /// Queue depth at `image`'s inbox (due and undue messages).
    pub fn inbox_depth(&self, image: ImageId) -> usize {
        self.inboxes[image.index()].len()
    }

    /// Wakes `image` if it is parked waiting for activity (no message is
    /// enqueued). See [`Inbox::poke`].
    pub fn poke(&self, image: ImageId) {
        self.inboxes[image.index()].poke();
    }

    /// Parks `image` until a message arrives / becomes due, a poke lands,
    /// a retransmission falls due, or `deadline` passes. See
    /// [`Inbox::wait_activity`].
    pub fn wait_activity(&self, image: ImageId, deadline: Instant) {
        self.pump_retries(image);
        let park = self.next_retry_at(image).map_or(deadline, |r| r.min(deadline));
        self.inboxes[image.index()].wait_activity(park);
        self.pump_retries(image);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(i: usize) -> ImageId {
        ImageId(i)
    }

    #[test]
    fn instant_network_delivers_immediately() {
        let f: Arc<Fabric<u32>> = Fabric::new(2, NetworkModel::instant(), false);
        f.send(img(0), img(1), 8, 99);
        assert_eq!(f.try_recv(img(1)), Some(99));
        assert_eq!(f.try_recv(img(0)), None);
    }

    #[test]
    fn latency_withholds_delivery() {
        let model = NetworkModel { latency: Duration::from_millis(30), ..NetworkModel::instant() };
        let f: Arc<Fabric<&str>> = Fabric::new(2, model, false);
        f.send(img(0), img(1), 0, "hi");
        assert_eq!(f.try_recv(img(1)), None, "message must not be visible early");
        let got = f.recv_until(img(1), Instant::now() + Duration::from_secs(2));
        assert_eq!(got, Some("hi"));
    }

    #[test]
    fn self_sends_skip_wire_latency() {
        let model = NetworkModel { latency: Duration::from_secs(3600), ..NetworkModel::instant() };
        let f: Arc<Fabric<u8>> = Fabric::new(2, model, false);
        f.send(img(1), img(1), 0, 5);
        assert_eq!(f.try_recv(img(1)), Some(5));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let f: Arc<Fabric<u8>> = Fabric::new(2, NetworkModel::instant(), false);
        f.send(img(0), img(1), 100, 1);
        f.send(img(0), img(1), 20, 2);
        assert_eq!(f.stats().messages(), 2);
        assert_eq!(f.stats().bytes(), 120);
    }

    #[test]
    fn backpressure_blocks_sender_until_receiver_drains() {
        let model = NetworkModel {
            inbox_capacity: Some(2),
            backpressure_stall: Duration::from_micros(100),
            ..NetworkModel::instant()
        };
        let f = Fabric::new(2, model, false);
        f.send(img(0), img(1), 0, 0u8);
        f.send(img(0), img(1), 0, 1u8);
        assert_eq!(f.inbox_depth(img(1)), 2);
        // A third send stalls until the receiver pops one message.
        let f2 = Arc::clone(&f);
        let sender = std::thread::spawn(move || {
            f2.send(img(0), img(1), 0, 2u8);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!sender.is_finished(), "sender should be stalled");
        assert_eq!(f.try_recv(img(1)), Some(0));
        sender.join().unwrap();
        assert!(f.stats().backpressure_stalls() > 0);
        assert_eq!(f.try_recv(img(1)), Some(1));
        assert_eq!(f.try_recv(img(1)), Some(2));
    }

    #[test]
    fn non_fifo_can_reorder_same_pair_messages() {
        // With reordering enabled and a measurable latency, *some* pair of
        // consecutive sends ends up with inverted deadlines. We test
        // deterministically: jitter is a pure function of the global
        // sequence number, so two specific messages reorder reproducibly.
        let model = NetworkModel { latency: Duration::from_millis(4), ..NetworkModel::instant() };
        let f: Arc<Fabric<u32>> = Fabric::new(2, model, true);
        for i in 0..32 {
            f.send(img(0), img(1), 0, i);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut order = Vec::new();
        while order.len() < 32 {
            if let Some(m) = f.recv_until(img(1), deadline) {
                order.push(m);
            } else {
                panic!("timed out draining");
            }
        }
        let sorted: Vec<u32> = (0..32).collect();
        assert_ne!(order, sorted, "expected at least one reordering");
        let mut check = order.clone();
        check.sort_unstable();
        assert_eq!(check, sorted, "no loss, no duplication");
    }

    // ------------------------------------------------------------------
    // Chaos layer
    // ------------------------------------------------------------------

    fn drain_reliable(
        f: &Arc<Fabric<u32>>,
        at: ImageId,
        expect: usize,
        patience: Duration,
    ) -> Vec<u32> {
        let deadline = Instant::now() + patience;
        let mut got = Vec::new();
        while got.len() < expect && Instant::now() < deadline {
            if let Some(m) = f.recv_until(at, Instant::now() + Duration::from_millis(5)) {
                got.push(m);
            }
        }
        got
    }

    /// The sender must keep polling (acks land in *its* inbox) for the
    /// protocol to converge; this helper pumps both sides.
    fn pump_sender(f: &Arc<Fabric<u32>>, sender: ImageId) {
        while f.try_recv(sender).is_some() {}
    }

    #[test]
    fn heavy_drop_rate_still_delivers_every_message_once() {
        let plan = FaultPlan::uniform_drop(0xC0FFEE, 0.4).with_dup(0.2);
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, RetryPolicy::aggressive());
        let total = 200u32;
        for i in 0..total {
            f.send(img(0), img(1), 4, i);
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut got = Vec::new();
        while got.len() < total as usize {
            assert!(Instant::now() < deadline, "lost messages: got {}", got.len());
            if let Some(m) = f.recv_until(img(1), Instant::now() + Duration::from_millis(2)) {
                got.push(m);
            }
            pump_sender(&f, img(0)); // sender consumes acks, pumps retries
        }
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>(), "exactly-once violated");
        assert!(f.stats().wire_drops() > 0, "plan should have dropped something");
        assert!(f.stats().retries() > 0, "drops must have forced retries");
        assert_eq!(f.stats().delivered(), total as u64);
        // The last acks may still be in flight; pump both sides until the
        // sender's outstanding queue converges to empty.
        while f.retry_backlog(img(0)) > 0 {
            assert!(Instant::now() < deadline, "acks never converged");
            pump_sender(&f, img(0));
            while f.try_recv(img(1)).is_some() {}
            std::thread::yield_now();
        }
    }

    #[test]
    fn duplicates_are_filtered_not_double_counted() {
        let plan = FaultPlan::none(9).with_dup(1.0); // duplicate everything
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, RetryPolicy::aggressive());
        for i in 0..50 {
            f.send(img(0), img(1), 0, i);
        }
        let got = drain_reliable(&f, img(1), 50, Duration::from_secs(10));
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Nothing further surfaces even though the wire carried ~2x.
        assert_eq!(f.try_recv(img(1)), None);
        assert!(f.stats().dups_discarded() > 0);
        assert_eq!(f.stats().delivered(), 50);
    }

    #[test]
    fn total_drop_link_exhausts_retry_budget() {
        let plan = FaultPlan::none(1).with_link(0, 1, 1.0); // black hole
        let retry = RetryPolicy {
            ack_timeout: Duration::from_micros(200),
            backoff: 2,
            max_timeout: Duration::from_millis(1),
            max_retries: 3,
        };
        let horizon = retry.exhaustion_horizon();
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, retry);
        f.send(img(0), img(1), 0, 7);
        assert_eq!(f.retry_backlog(img(0)), 1);
        let deadline = Instant::now() + horizon * 4 + Duration::from_millis(50);
        while f.stats().retries_exhausted() == 0 {
            assert!(Instant::now() < deadline, "budget never exhausted");
            f.wait_activity(img(0), Instant::now() + Duration::from_micros(100));
        }
        assert_eq!(f.retry_backlog(img(0)), 0, "abandoned message must leave the queue");
        assert_eq!(f.stats().retries(), 3, "exactly max_retries retransmissions");
        assert_eq!(f.try_recv(img(1)), None, "nothing ever crossed the link");
    }

    #[test]
    fn ack_loss_causes_retries_but_no_duplicate_delivery() {
        // Reverse link (acks) is a black hole; data link is clean.
        let plan = FaultPlan::none(4).with_link(1, 0, 1.0);
        let retry = RetryPolicy {
            ack_timeout: Duration::from_micros(200),
            backoff: 2,
            max_timeout: Duration::from_millis(1),
            max_retries: 4,
        };
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, retry);
        f.send(img(0), img(1), 0, 11);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut surfaced = Vec::new();
        while f.stats().retries_exhausted() == 0 {
            assert!(Instant::now() < deadline, "sender never gave up");
            if let Some(m) = f.try_recv(img(1)) {
                surfaced.push(m);
            }
            f.wait_activity(img(0), Instant::now() + Duration::from_micros(100));
        }
        // Give any in-flight retransmits time to land, then re-drain.
        std::thread::sleep(Duration::from_millis(5));
        while let Some(m) = f.try_recv(img(1)) {
            surfaced.push(m);
        }
        assert_eq!(surfaced, vec![11], "dedup must absorb every retransmission");
        assert!(f.stats().dups_discarded() > 0, "retransmits should have arrived");
        assert_eq!(f.stats().delivered(), 1);
    }

    #[test]
    fn stall_window_defers_delivery_until_it_closes() {
        let stall = Duration::from_millis(40);
        let plan = FaultPlan::none(2).with_stall(1, Duration::ZERO, stall);
        let f: Arc<Fabric<u32>> = Fabric::with_faults(
            2,
            NetworkModel::instant(),
            false,
            plan,
            RetryPolicy { ack_timeout: Duration::from_secs(1), ..RetryPolicy::default() },
        );
        let t0 = Instant::now();
        f.send(img(0), img(1), 0, 3);
        assert_eq!(f.try_recv(img(1)), None, "stalled image must not see the message yet");
        let got = f.recv_until(img(1), t0 + Duration::from_secs(5));
        assert_eq!(got, Some(3));
        assert!(
            t0.elapsed() >= stall - Duration::from_millis(1),
            "delivery {}µs after send, before the {}ms window closed",
            t0.elapsed().as_micros(),
            stall.as_millis()
        );
    }

    // ------------------------------------------------------------------
    // Fail-stop crashes + failure detection
    // ------------------------------------------------------------------

    use caf_core::failure::FailureParams;

    fn chaos_pair(plan: FaultPlan) -> Arc<Fabric<u32>> {
        Fabric::with_chaos(
            2,
            NetworkModel::instant(),
            false,
            plan,
            RetryPolicy::aggressive(),
            Some(FailureParams::aggressive()),
        )
    }

    #[test]
    fn idle_links_heartbeat_and_stay_alive() {
        let f = chaos_pair(FaultPlan::none(7));
        let deadline = Instant::now() + FailureParams::aggressive().detection_horizon() * 3;
        while Instant::now() < deadline {
            for i in 0..2 {
                while f.try_recv(img(i)).is_some() {}
                f.wait_activity(img(i), Instant::now() + Duration::from_micros(200));
            }
        }
        assert!(f.stats().heartbeats() > 0, "idle links must heartbeat");
        assert!(f.poll_failures(img(0)).is_empty(), "image 1 is alive");
        assert!(f.poll_failures(img(1)).is_empty(), "image 0 is alive");
    }

    #[test]
    fn injected_crash_is_confirmed_by_the_survivor() {
        // Image 1 crashes on the very first wire transmission.
        let f = chaos_pair(FaultPlan::none(3).with_crash(1, 0));
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut downs = Vec::new();
        while downs.is_empty() {
            assert!(Instant::now() < deadline, "crash never confirmed");
            downs = f.poll_failures(img(0));
            std::thread::sleep(Duration::from_micros(200));
        }
        assert_eq!(downs[0].peer, 1);
        assert_eq!(downs[0].incarnation, 1);
        assert!(downs[0].latency.is_some(), "fabric knows when the crash fired");
        assert!(f.is_crashed(img(1)));
        assert_eq!(f.crashed_images(), vec![1]);
        assert!(f.stats().crash_drops() > 0, "traffic to the dead image is destroyed");
    }

    #[test]
    fn posthumous_data_is_filtered_not_delivered() {
        let model = NetworkModel { latency: Duration::from_millis(30), ..NetworkModel::instant() };
        let f: Arc<Fabric<u32>> = Fabric::with_chaos(
            2,
            model,
            false,
            FaultPlan::none(11),
            RetryPolicy { ack_timeout: Duration::from_secs(60), ..RetryPolicy::default() },
            Some(FailureParams::default()),
        );
        // Image 1's message is in flight when image 0 learns of its death
        // (e.g. from an ImageDown broadcast).
        f.send(img(1), img(0), 4, 77);
        f.mark_peer_dead(img(0), 1, 1);
        let got = f.recv_until(img(0), Instant::now() + Duration::from_millis(200));
        assert_eq!(got, None, "posthumous payload must not surface");
        assert!(f.stats().posthumous_drops() > 0);
        assert_eq!(f.stats().delivered(), 0);
    }

    #[test]
    fn crashed_destination_never_parks_a_sender() {
        let model = NetworkModel { inbox_capacity: Some(1), ..NetworkModel::instant() };
        let f: Arc<Fabric<u32>> = Fabric::with_chaos(
            2,
            model,
            false,
            FaultPlan::none(5),
            RetryPolicy::default(),
            Some(FailureParams::default()),
        );
        f.send(img(0), img(1), 0, 1); // fills the capacity-1 inbox
        f.mark_crashed(img(1));
        let t0 = Instant::now();
        f.send(img(0), img(1), 0, 2); // must admit-and-drop, not park
        assert!(t0.elapsed() < Duration::from_secs(1), "sender parked on a dead drainer");
        assert!(f.stats().crash_drops() > 0);
        assert!(f.try_send(img(0), img(1), 0, 3).is_ok(), "try_send must admit-and-drop too");
    }

    #[test]
    fn retired_images_are_never_suspected() {
        let f = chaos_pair(FaultPlan::none(9));
        f.retire(img(1)); // image 1 exits cleanly and goes silent
        let deadline = Instant::now() + FailureParams::aggressive().detection_horizon() * 3;
        while Instant::now() < deadline {
            assert!(f.poll_failures(img(0)).is_empty(), "clean exit misread as a crash");
            std::thread::sleep(Duration::from_micros(500));
        }
        let (suspects, _) = f.failure_metrics(img(0));
        assert_eq!(suspects, 0, "retired peers must never enter the suspect window");
    }

    #[test]
    fn retry_exhaustion_fast_paths_to_death_confirmation() {
        // Both directions are black holes, and the silence deadline is an
        // hour: only the retry-exhaustion hint can raise the suspicion.
        let plan = FaultPlan::none(2).with_link(0, 1, 1.0).with_link(1, 0, 1.0);
        let retry = RetryPolicy {
            ack_timeout: Duration::from_micros(200),
            backoff: 2,
            max_timeout: Duration::from_millis(1),
            max_retries: 3,
        };
        let params = FailureParams {
            heartbeat_period: Duration::from_millis(1),
            suspect_after: Duration::from_secs(3600),
            confirm_after: Duration::from_millis(5),
        };
        let f: Arc<Fabric<u32>> =
            Fabric::with_chaos(2, NetworkModel::instant(), false, plan, retry, Some(params));
        f.send(img(0), img(1), 0, 9);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut downs = Vec::new();
        while downs.is_empty() {
            assert!(Instant::now() < deadline, "exhaustion never confirmed the death");
            f.wait_activity(img(0), Instant::now() + Duration::from_micros(200));
            downs = f.poll_failures(img(0));
        }
        assert!(f.stats().retries_exhausted() > 0);
        assert_eq!(downs[0].peer, 1);
        assert_eq!(downs[0].latency, None, "no crash fault fired; origin unknown");
    }

    #[test]
    fn chaos_decisions_are_reproducible_across_fabrics() {
        // Same plan + same send order → identical drop/dup counters.
        let run = |seed: u64| {
            let plan = FaultPlan::uniform_drop(seed, 0.3).with_dup(0.3);
            let f: Arc<Fabric<u32>> = Fabric::with_faults(
                2,
                NetworkModel::instant(),
                false,
                plan,
                // Ack timeout far beyond the test body: no retransmission
                // ever fires, so wire traffic is exactly the sends.
                RetryPolicy { ack_timeout: Duration::from_secs(60), ..RetryPolicy::default() },
            );
            for i in 0..100 {
                f.send(img(0), img(1), 0, i);
            }
            (f.stats().wire_drops(), f.stats().wire_dups())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ somewhere");
    }
}
