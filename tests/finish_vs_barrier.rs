//! Paper Fig. 5 across the whole stack: barrier-based termination
//! detection misses transitively shipped functions; `finish` does not.
//!
//! Exercised three ways — on the abstract detector harness, on the
//! discrete-event simulator, and on the real threaded runtime under
//! latency and message reordering.

use caf2::core::termination::harness::{node, Harness, SpawnPlan};
use caf2::core::termination::EpochDetector;
use caf2::{CommMode, NetworkModel, Runtime, RuntimeConfig};
use std::time::Duration;

/// Abstract machine: the exact p → q → r schedule of Fig. 5.
#[test]
fn barrier_misses_f2_on_the_abstract_machine() {
    let mut plan = SpawnPlan { net_delay: 1, ack_delay: 1, exec_delay: 5, ..SpawnPlan::default() };
    plan.spawn(0, node(1, vec![node(2, vec![])]));
    let run = Harness::run_barrier(3, plan.clone());
    assert!(
        run.outstanding_at_declaration > 0,
        "the barrier strawman should declare termination early"
    );
    // finish on the identical schedule is sound (run() panics otherwise)
    // and fast: L = 2 → at most 3 waves.
    let mut h = Harness::new(3, || Box::new(EpochDetector::new(true)));
    let waves = h.run(plan);
    assert!(waves <= 3);
}

/// Threaded runtime: after `end finish`, the transitively shipped
/// effect must be visible, under real latency and non-FIFO delivery.
#[test]
fn finish_sees_transitive_effects_on_the_runtime() {
    let cfg = RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel { latency: Duration::from_micros(500), ..NetworkModel::instant() },
        non_fifo: true,
        ..RuntimeConfig::default()
    };
    let seen = Runtime::launch(3, cfg, |img| {
        let w = img.world();
        let flags = img.coarray(&w, 1, 0u8);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                let f = flags.clone();
                img.spawn(img.image(1), move |q| {
                    std::thread::sleep(Duration::from_millis(3));
                    let f2 = f.clone();
                    q.spawn(q.image(2), move |r| {
                        std::thread::sleep(Duration::from_millis(3));
                        f2.with_local(r.id(), |seg| seg[0] = 1);
                    });
                });
            }
        });
        // Immediately after end finish — no extra barrier — the flag
        // must be set on image 2 and visible to it.
        flags.read(img.id(), 0..1)[0]
    });
    assert_eq!(seen[2], 1, "finish returned before f2 completed");
}

/// Deep spawn chains: the wave count respects Theorem 1 end-to-end.
#[test]
fn deep_chain_waves_bounded_on_the_runtime() {
    let n = 4;
    let depth = 6usize;
    let waves = Runtime::launch(n, RuntimeConfig::testing(), |img| {
        let w = img.world();
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                fn hop(img: &caf2::Image, left: usize) {
                    if left == 0 {
                        return;
                    }
                    let next = img.image((img.id().index() + 1) % img.num_images());
                    img.spawn(next, move |p| hop(p, left - 1));
                }
                hop(img, depth);
            }
        });
        img.last_finish_waves()
    });
    for w in waves {
        assert!(w <= depth + 1, "L={depth} but {w} waves used");
        assert!(w >= 1);
    }
}
