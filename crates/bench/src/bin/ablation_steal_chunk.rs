//! **Ablation**: the steal-chunk cap (paper §IV-C1a).
//!
//! GASNet's `AMMedium` payload bounds what one shipped steal can carry —
//! at most 9 work descriptors in the paper's prototype. This ablation
//! sweeps the cap in the UTS simulation: tiny chunks mean many fruitless
//! round trips; very large chunks de-randomize the balance (victims get
//! drained wholesale) without helping runtime much.

use bench::{fmt_ns, print_table, scaled_tree};
use caf_sim::{run_uts_sim, UtsSimConfig};

fn main() {
    let spec = scaled_tree(11);
    let p = 512;
    let mut rows = Vec::new();
    for chunk in [1usize, 3, 9, 27, 81, 243] {
        let mut cfg = UtsSimConfig::new(spec, p);
        cfg.node_cost_ns = 20_000;
        cfg.steal_chunk = chunk;
        let r = run_uts_sim(cfg);
        let rel = r.relative_work();
        let spread = rel.iter().cloned().fold(f64::MIN, f64::max)
            - rel.iter().cloned().fold(f64::MAX, f64::min);
        rows.push(vec![
            chunk.to_string(),
            fmt_ns(r.sim_time_ns),
            format!("{:.2}", r.efficiency(p, 20_000)),
            r.messages.to_string(),
            r.steals.to_string(),
            format!("{spread:.3}"),
        ]);
    }
    print_table(
        &format!("Steal-chunk ablation (simulated UTS, {p} images)"),
        &["chunk", "T_p", "efficiency", "messages", "steals", "balance spread"],
        &rows,
    );
    println!(
        "The paper's prototype was pinned at 9 by AMMedium; the sweep shows the trade-off \
         that constraint sits inside (message volume vs. steal effectiveness)."
    );
}
