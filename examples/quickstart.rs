//! Quickstart: a guided tour of the CAF 2.0 constructs.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Four SPMD images walk through coarrays, events, asynchronous copies,
//! function shipping under `finish`, a directional `cofence`, and an
//! asynchronous broadcast — the complete cast of paper Figs. 1–4.

use caf2::{AsyncCollEvents, CommMode, CopyEvents, Pass, Runtime, RuntimeConfig, TeamRank};

fn main() {
    let cfg = RuntimeConfig { comm_mode: CommMode::DedicatedThread, ..RuntimeConfig::default() };
    let n = 4;
    Runtime::launch(n, cfg, |img| {
        let world = img.world();
        let me = img.id();
        let rank = me.index();

        // --- Coarrays: one 8-word segment per image -------------------
        let data = img.coarray(&world, 8, 0u64);
        data.with_local(me, |seg| seg.fill(rank as u64 + 1));
        img.barrier(&world);

        // --- Asynchronous copy with an explicit destination event -----
        // Everyone sends its segment to its right neighbour and waits for
        // the incoming copy via a co-event (an event coarray).
        let arrived = img.coevent();
        let right = img.image((rank + 1) % n);
        let inbox = img.coarray(&world, 8, 0u64);
        img.copy_async(
            inbox.slice(right, 0..8),
            data.slice(me, 0..8),
            CopyEvents::on_dest(arrived.on(right)),
        );
        img.event_wait(arrived.on(me));
        let left = (rank + n - 1) % n;
        assert_eq!(inbox.read(me, 0..8), vec![left as u64 + 1; 8]);

        // --- Function shipping under finish ---------------------------
        // Each image ships an increment to every other image; end finish
        // guarantees global completion — even if shipped functions spawn
        // more functions transitively.
        let counters = img.coarray(&world, 1, 0u64);
        img.finish(&world, |img| {
            for peer in 0..n {
                if peer != rank {
                    let c = counters.clone();
                    img.spawn(img.image(peer), move |p| {
                        c.with_local(p.id(), |seg| seg[0] += 1);
                    });
                }
            }
        });
        assert_eq!(counters.read(me, 0..1), vec![(n - 1) as u64]);

        // --- cofence: local data completion ---------------------------
        // Overwrite the source right after a directional cofence; the
        // copy is guaranteed to have snapshotted it (DOWNWARD=WRITE lets
        // unrelated local-write operations continue past the fence).
        let staging = caf2::LocalArray::new(vec![rank as u64; 8]);
        img.finish(&world, |img| {
            img.copy_async_from(inbox.slice(right, 0..8), &staging, 0..8, CopyEvents::none());
            img.cofence_dir(Pass::Writes, Pass::None);
            staging.write(0, &[999; 8]); // safe: source already read
        });

        // --- Asynchronous broadcast (paper Fig. 9) --------------------
        let bcast = img.coarray(&world, 4, 0u64);
        if rank == 0 {
            bcast.with_local(me, |seg| seg.copy_from_slice(&[2, 0, 1, 3]));
        }
        let src_done = img.event();
        let role_done = img.event();
        img.broadcast_async(
            &world,
            &bcast,
            0..4,
            TeamRank(0),
            AsyncCollEvents { src: Some(src_done), local_op: Some(role_done) },
        );
        img.event_wait(src_done); // data readable here
        assert_eq!(bcast.read(me, 0..4), vec![2, 0, 1, 3]);
        img.event_wait(role_done); // my forwarding role complete

        // --- Collectives -----------------------------------------------
        let sum = img.allreduce(&world, rank as i64, |a, b| a + b);
        if rank == 0 {
            println!("quickstart OK on {n} images (rank sum = {sum})");
        }
    });
}
