//! Closing the runtime → static-analyzer loop: run the real threaded
//! runtime with a [`TraceRecorder`] installed, reconstruct a `caf-lint`
//! plan from the capture, and lint it. The public API only ships active
//! messages under a finish, so every reconstructed plan must be free of
//! error diagnostics — in particular free of finish-coverage leaks.

use std::sync::Arc;

use caf_core::config::RuntimeConfig;
use caf_core::trace::TraceRecorder;
use caf_lint::{lint, plan_from_trace};
use caf_runtime::Runtime;

fn traced_config() -> (RuntimeConfig, Arc<TraceRecorder>) {
    let rec = Arc::new(TraceRecorder::new());
    let cfg = RuntimeConfig { trace: Some(rec.clone()), ..RuntimeConfig::testing() };
    (cfg, rec)
}

#[test]
fn single_finish_capture_lints_clean() {
    let (cfg, rec) = traced_config();
    Runtime::launch(3, cfg, |img| {
        let w = img.world();
        let cells = img.coarray(&w, 1, 0u64);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                let c = cells.clone();
                img.spawn(img.image(1), move |p| {
                    c.with_local(p.id(), |seg| seg[0] = 7);
                });
            }
        });
    });
    let events = rec.snapshot();
    assert!(!events.is_empty(), "the traced finish recorded nothing");
    let plan = plan_from_trace(&events);
    assert_eq!(plan.images, 3);
    let diags = lint(&plan).unwrap();
    assert!(diags.iter().all(|d| !d.is_error()), "reconstructed plan drew errors: {diags:?}");
    // At least one finish-covered spawn was reconstructed.
    assert!(!plan.blocks.is_empty(), "no spawn structure recovered from the trace");
}

#[test]
fn transitive_spawn_capture_lints_clean() {
    // The Fig. 5 shape (p → q → r): the relayed spawn is recorded under
    // the same dynamic finish, so the reconstruction keeps it covered.
    let (cfg, rec) = traced_config();
    Runtime::launch(3, cfg, |img| {
        let w = img.world();
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                img.spawn(img.image(1), move |q| {
                    q.spawn(q.image(2), move |_r| {});
                });
            }
        });
    });
    let plan = plan_from_trace(&rec.snapshot());
    let diags = lint(&plan).unwrap();
    assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    // Both hops appear as spawns (image 0's and image 1's).
    let senders: Vec<Option<usize>> = plan.blocks.iter().map(|b| b.image).collect();
    assert!(senders.contains(&Some(0)) && senders.contains(&Some(1)), "{senders:?}");
}
