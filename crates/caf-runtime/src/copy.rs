//! Predicated asynchronous copies (paper §II-C1):
//! `copy_async(destA[p1], srcA[p2], preE, srcE, destE)`.
//!
//! Initiation only enqueues a descriptor on the image's communication
//! engine; the source-buffer snapshot happens later (on the communication
//! thread under [`caf_core::config::CommMode::DedicatedThread`]), so
//! *local data completion* is a genuinely later point than initiation —
//! the window the `cofence` micro-benchmark (Fig. 12) exploits. The data
//! plane rides ordinary active messages, so finish accounting and latency
//! modelling come for free:
//!
//! * local source → remote destination: snapshot (LDC), one data AM,
//!   completion notification back (LOC);
//! * remote source → local destination (a *get*): request AM to the
//!   owner, data AM back (LDC = LOC = data applied locally);
//! * remote source → remote destination (third party): request AM, then a
//!   data AM from source owner to destination.
//!
//! `preE` must be owned by the initiating image; `srcE`/`destE` may live
//! anywhere (they are notified from the image where the respective
//! condition becomes true, exactly as the paper allows).

use std::ops::Range;
use std::sync::Arc;

use caf_core::cofence::LocalAccess;
use parking_lot::Mutex;

use crate::coarray::{CoSlice, Coarray, LocalArray};
use crate::completion::{Completion, Stage};
use crate::event::Event;
use crate::image::Image;
use crate::msg::{AmFn, Msg};

/// Request-message nominal size (descriptor only, no data).
const REQ_BYTES: usize = 48;

/// The optional completion events of `copy_async`.
#[derive(Default, Clone, Copy)]
pub struct CopyEvents {
    /// Predicate: the copy may proceed only after this event is posted.
    /// Must be owned by the initiating image.
    pub pre: Option<Event>,
    /// Notified when the source has been read (source may be overwritten).
    pub src: Option<Event>,
    /// Notified when the data has been delivered to the destination.
    pub dest: Option<Event>,
}

impl CopyEvents {
    /// Implicit completion: no events; the operation is managed by
    /// `cofence`/`finish`.
    pub fn none() -> Self {
        CopyEvents::default()
    }

    /// Only a destination-delivery event.
    pub fn on_dest(ev: Event) -> Self {
        CopyEvents { dest: Some(ev), ..CopyEvents::default() }
    }

    /// Only a source-read event.
    pub fn on_src(ev: Event) -> Self {
        CopyEvents { src: Some(ev), ..CopyEvents::default() }
    }

    fn is_implicit(&self) -> bool {
        self.src.is_none() && self.dest.is_none()
    }
}

/// Handle to one asynchronous operation's completion state.
pub struct AsyncOp {
    pub(crate) completion: Arc<Completion>,
}

impl AsyncOp {
    /// Local data completion reached? (Local buffers out of play.)
    pub fn local_data_complete(&self) -> bool {
        self.completion.reached(Stage::LocalData)
    }

    /// Local operation completion reached? (All pair-wise communication
    /// involving the initiator done.)
    pub fn local_op_complete(&self) -> bool {
        self.completion.reached(Stage::LocalOp)
    }
}

/// Where arriving copy data lands: a coarray segment or a local array.
enum Sink<T> {
    Co(Coarray<T>, usize, caf_core::ids::ImageId),
    Arr(LocalArray<T>, usize),
}

impl<T: Clone + Send + 'static> Sink<T> {
    fn image(&self, me: caf_core::ids::ImageId) -> caf_core::ids::ImageId {
        match self {
            Sink::Co(_, _, img) => *img,
            Sink::Arr(..) => me,
        }
    }

    fn apply(&self, data: &[T]) {
        match self {
            Sink::Co(co, offset, img) => co.write(*img, *offset, data),
            Sink::Arr(arr, offset) => arr.write(*offset, data),
        }
    }
}

impl Image {
    /// Blocks (with progress) until `op` is local data complete.
    pub fn wait_local_data(&self, op: &AsyncOp) {
        self.wait_until("copy", || op.completion.reached(Stage::LocalData));
    }

    /// Blocks (with progress) until `op` is local operation complete.
    pub fn wait_local_op(&self, op: &AsyncOp) {
        self.wait_until("copy", || op.completion.reached(Stage::LocalOp));
    }

    /// `copy_async(dst[p1], src[p2], …)` between coarray slices. Either
    /// endpoint may be local or remote; lengths must match.
    pub fn copy_async<T: Clone + Send + 'static>(
        &self,
        dst: CoSlice<T>,
        src: CoSlice<T>,
        ev: CopyEvents,
    ) -> AsyncOp {
        assert_eq!(dst.len(), src.len(), "copy endpoints must have equal length");
        let sink = Sink::Co(dst.coarray, dst.range.start, dst.image);
        if src.image == self.id() {
            let co = src.coarray;
            let image = src.image;
            let range = src.range;
            let nbytes = range.len() * std::mem::size_of::<T>();
            self.copy_with_local_src(move || co.read(image, range), nbytes, sink, ev)
        } else {
            self.copy_with_remote_src(src, sink, ev)
        }
    }

    /// `copy_async` from a local (non-coarray) array into a coarray slice.
    pub fn copy_async_from<T: Clone + Send + 'static>(
        &self,
        dst: CoSlice<T>,
        src: &LocalArray<T>,
        src_range: Range<usize>,
        ev: CopyEvents,
    ) -> AsyncOp {
        assert_eq!(dst.len(), src_range.len(), "copy endpoints must have equal length");
        let sink = Sink::Co(dst.coarray, dst.range.start, dst.image);
        let src = src.clone();
        let nbytes = src_range.len() * std::mem::size_of::<T>();
        self.copy_with_local_src(move || src.read(src_range), nbytes, sink, ev)
    }

    /// `copy_async` from a coarray slice into a local (non-coarray) array.
    pub fn copy_async_to<T: Clone + Send + 'static>(
        &self,
        dst: &LocalArray<T>,
        dst_offset: usize,
        src: CoSlice<T>,
        ev: CopyEvents,
    ) -> AsyncOp {
        let sink = Sink::Arr(dst.clone(), dst_offset);
        if src.image == self.id() {
            let co = src.coarray;
            let image = src.image;
            let range = src.range;
            let nbytes = range.len() * std::mem::size_of::<T>();
            self.copy_with_local_src(move || co.read(image, range), nbytes, sink, ev)
        } else {
            self.copy_with_remote_src(src, sink, ev)
        }
    }

    /// Resolves the predicate event: inline mode must poll on the image
    /// thread (blocking would deadlock progress); offloaded mode hands the
    /// wait to the communication thread. Returns the event the comm task
    /// should still block on, if any.
    fn resolve_pre(&self, pre: Option<Event>) -> Option<Event> {
        let p = pre?;
        assert_eq!(p.owner(), self.id(), "preE must be owned by the initiating image");
        if self.pump.is_offloaded() {
            Some(p)
        } else {
            let cell = self.shared.event_tables[self.id().index()].cell(p.id.slot);
            self.wait_until("copy", || cell.try_consume());
            None
        }
    }

    fn copy_with_local_src<T: Clone + Send + 'static>(
        &self,
        read: impl FnOnce() -> Vec<T> + Send + 'static,
        nbytes: usize,
        sink: Sink<T>,
        ev: CopyEvents,
    ) -> AsyncOp {
        let me = self.id();
        let dst_img = sink.image(me);
        let dst_is_local = dst_img == me;
        let comp = Completion::new();
        if ev.is_implicit() {
            let access = if dst_is_local { LocalAccess::READ_WRITE } else { LocalAccess::READ };
            self.register_pending(Arc::clone(&comp), access);
        }
        let pre_task = self.resolve_pre(ev.pre);
        let tag = self.am_tag();
        let shared = Arc::clone(&self.shared);
        let comp_task = Arc::clone(&comp);
        let (src_ev, dest_ev) = (ev.src, ev.dest);
        self.pump.submit(move || {
            if let Some(p) = pre_task {
                shared.event_tables[me.index()].cell(p.id.slot).block_consume();
            }
            let data = read();
            let comp_dst = Arc::clone(&comp_task);
            let func: AmFn = Box::new(move |img: &Image| {
                sink.apply(&data);
                if let Some(e) = dest_ev {
                    img.notify_event_id(e.id);
                }
                if img.id() == me {
                    comp_dst.advance(Stage::LocalOp);
                } else {
                    img.shared.fabric.send_unthrottled(
                        img.id(),
                        me,
                        0,
                        Msg::Complete { completion: comp_dst, stage: Stage::LocalOp },
                    );
                }
            });
            Image::send_prepared_am(&shared, me, dst_img, nbytes, tag, None, false, func);
            if !dst_is_local {
                // Local data completion: the source has been read *and*
                // the data message injected — so anything the initiator
                // sends to the same target after observing LDC (e.g. a
                // "buffer ready" notify after a cofence) orders behind
                // the data on a FIFO fabric, like GASNet's local
                // completion. For a self-copy the destination is local
                // too, so LDC waits for the write (conservative).
                comp_task.advance(Stage::LocalData);
                shared.fabric.poke(me);
            }
            if let Some(e) = src_ev {
                crate::image::notify_event_from(&shared, me, e.id);
            }
        });
        AsyncOp { completion: comp }
    }

    fn copy_with_remote_src<T: Clone + Send + 'static>(
        &self,
        src: CoSlice<T>,
        sink: Sink<T>,
        ev: CopyEvents,
    ) -> AsyncOp {
        let me = self.id();
        let dst_img = sink.image(me);
        let dst_is_local = dst_img == me;
        let comp = Completion::new();
        if dst_is_local {
            if ev.is_implicit() {
                self.register_pending(Arc::clone(&comp), LocalAccess::WRITE);
            }
        } else {
            // Third-party copy: no local buffers, nothing for cofence.
            comp.advance(Stage::LocalData);
        }
        let pre_task = self.resolve_pre(ev.pre);
        let tag = self.am_tag();
        let shared = Arc::clone(&self.shared);
        let comp_req = Arc::clone(&comp);
        let (src_ev, dest_ev) = (ev.src, ev.dest);
        let nbytes = src.range.len() * std::mem::size_of::<T>();
        let src_owner = src.image;
        self.pump.submit(move || {
            if let Some(p) = pre_task {
                shared.event_tables[me.index()].cell(p.id.slot).block_consume();
            }
            let request: AmFn = Box::new(move |owner: &Image| {
                let data = owner.with_co_read(&src);
                if let Some(e) = src_ev {
                    owner.notify_event_id(e.id);
                }
                let comp_dst = comp_req;
                let func: AmFn = Box::new(move |img: &Image| {
                    sink.apply(&data);
                    if let Some(e) = dest_ev {
                        img.notify_event_id(e.id);
                    }
                    if img.id() == me {
                        // A get: the local destination is now readable —
                        // local data and local operation completion.
                        comp_dst.advance(Stage::LocalOp);
                    } else {
                        img.shared.fabric.send_unthrottled(
                            img.id(),
                            me,
                            0,
                            Msg::Complete { completion: comp_dst, stage: Stage::LocalOp },
                        );
                    }
                });
                owner.send_am(dst_img, nbytes, false, None, func);
            });
            Image::send_prepared_am(&shared, me, src_owner, REQ_BYTES, tag, None, false, request);
        });
        AsyncOp { completion: comp }
    }

    fn with_co_read<T: Clone + Send + 'static>(&self, s: &CoSlice<T>) -> Vec<T> {
        s.coarray.read(s.image, s.range.clone())
    }

    /// Blocking one-sided read of a coarray slice (built on `copy_async`;
    /// waits for local operation completion). The Get-Update-Put
    /// RandomAccess variant uses this.
    pub fn get_blocking<T: Clone + Send + 'static>(&self, src: CoSlice<T>) -> Vec<T> {
        let out: Arc<Mutex<Vec<T>>> = Arc::new(Mutex::new(Vec::new()));
        let comp = Completion::new();
        let me = self.id();
        let nbytes = src.range.len() * std::mem::size_of::<T>();
        let src_owner = src.image;
        let out_req = Arc::clone(&out);
        let comp_req = Arc::clone(&comp);
        let request: AmFn = Box::new(move |owner: &Image| {
            let data = owner.with_co_read(&src);
            if owner.id() == me {
                *out_req.lock() = data;
                comp_req.advance(Stage::LocalOp);
            } else {
                let func: AmFn = Box::new(move |_img: &Image| {
                    *out_req.lock() = data;
                    comp_req.advance(Stage::LocalOp);
                });
                owner.send_am(me, nbytes, false, None, func);
            }
        });
        self.send_am(src_owner, REQ_BYTES, false, None, request);
        self.wait_until("copy", || comp.reached(Stage::LocalOp));
        Arc::try_unwrap(out)
            .map(|m| m.into_inner())
            .unwrap_or_else(|a| a.lock().clone())
    }

    /// Blocking one-sided write of `data` into a coarray slice (waits for
    /// delivery).
    pub fn put_blocking<T: Clone + Send + 'static>(&self, dst: CoSlice<T>, data: Vec<T>) {
        assert_eq!(dst.len(), data.len());
        let sink = Sink::Co(dst.coarray, dst.range.start, dst.image);
        let nbytes = data.len() * std::mem::size_of::<T>();
        let op = self.copy_with_local_src(move || data, nbytes, sink, CopyEvents::none());
        self.wait_local_op(&op);
    }

    /// Non-blocking one-sided write with implicit completion (managed by
    /// `cofence`/`finish`).
    pub fn put_async<T: Clone + Send + 'static>(&self, dst: CoSlice<T>, data: Vec<T>) -> AsyncOp {
        assert_eq!(dst.len(), data.len());
        let sink = Sink::Co(dst.coarray, dst.range.start, dst.image);
        let nbytes = data.len() * std::mem::size_of::<T>();
        self.copy_with_local_src(move || data, nbytes, sink, CopyEvents::none())
    }
}
