//! Virtual-time `finish` coordination.
//!
//! Drives one [`EpochDetector`] per simulated image — the *same* state
//! machine the threaded runtime uses — and models the synchronous team
//! allreduce: a wave opens as images become eligible (idle, queue drained,
//! detector-ready) and closes `allreduce_cost(p)` after the last image
//! enters; every image receives the same sum. Messages delivered while a
//! wave is open are counted in the odd epoch by the detector itself, so
//! the consistent-cut arithmetic is identical to the real runtime's.

use caf_core::ids::Parity;
use caf_core::termination::{EpochDetector, WaveDecision, WaveDetector};

/// Per-`finish`-block wave coordinator over `p` simulated images.
pub struct FinishSim {
    detectors: Vec<EpochDetector>,
    in_wave: Vec<bool>,
    /// Fail-stopped images: excluded from wave membership once their
    /// death is observed (the survivors' poisoned wave closes without
    /// them — a dead contributor would otherwise hang the allreduce
    /// forever).
    dead: Vec<bool>,
    live: usize,
    entered: usize,
    /// A wave-completion is already scheduled (guards against the same
    /// wave closing twice when a death shrinks the membership to exactly
    /// the current entrants).
    closing: bool,
    sum: [i64; 2],
    waves: usize,
    terminated: bool,
    aborted: bool,
    /// Entry time of the latest entrant (the wave's start for costing).
    pub last_entry_ns: u64,
}

impl FinishSim {
    /// Coordinator for `p` images; `strict` selects the paper's
    /// wait-for-quiescence algorithm vs. the Fig. 18 no-upper-bound
    /// baseline.
    pub fn new(p: usize, strict: bool) -> Self {
        FinishSim {
            detectors: (0..p).map(|_| EpochDetector::new(strict)).collect(),
            in_wave: vec![false; p],
            dead: vec![false; p],
            live: p,
            entered: 0,
            closing: false,
            sum: [0; 2],
            waves: 0,
            terminated: false,
            aborted: false,
            last_entry_ns: 0,
        }
    }

    /// Records a send by `img`; returns the message's epoch tag.
    pub fn on_send(&mut self, img: usize) -> Parity {
        self.detectors[img].on_send()
    }

    /// Records delivery of a `tag`-tagged message at `img`.
    pub fn on_receive(&mut self, img: usize, tag: Parity) {
        self.detectors[img].on_receive(tag);
    }

    /// Records completion of a received message's handler at `img`.
    pub fn on_complete(&mut self, img: usize, tag: Parity) {
        self.detectors[img].on_complete(tag);
    }

    /// Records a delivery acknowledgement arriving back at sender `img`.
    pub fn on_delivered(&mut self, img: usize) {
        self.detectors[img].on_delivered(Parity::Even);
    }

    /// Whether `img`'s detector permits joining the next wave.
    pub fn detector_ready(&self, img: usize) -> bool {
        self.detectors[img].ready()
    }

    /// Whether `img` is currently inside the open wave.
    pub fn in_wave(&self, img: usize) -> bool {
        self.in_wave[img]
    }

    /// Global termination already detected?
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// A poisoned wave closed: the survivors collectively aborted.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Images still participating in waves.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Waves completed so far (the Fig. 18 metric).
    pub fn waves(&self) -> usize {
        self.waves
    }

    /// Poisons `img`'s detector with `victim`'s death: `img` stops
    /// waiting for quiescence and its next wave exit reports
    /// [`WaveDecision::Poisoned`].
    pub fn poison(&mut self, img: usize, victim: usize) {
        self.detectors[img].poison(victim);
    }

    /// Removes a fail-stopped `victim` from wave membership. Returns
    /// `true` when the removal closes the open wave (every remaining
    /// live image had already entered) — the caller then schedules the
    /// wave-completion event, exactly as for a closing entry.
    pub fn mark_dead(&mut self, victim: usize) -> bool {
        if self.dead[victim] {
            return false;
        }
        self.dead[victim] = true;
        self.live -= 1;
        if self.in_wave[victim] {
            // Its contribution stays in the sum; the wave is poisoned by
            // the observer that reported the death, so the sum's value
            // no longer decides anything.
            self.in_wave[victim] = false;
            self.entered -= 1;
        }
        let closes = self.live > 0 && self.entered == self.live && !self.closing;
        if closes {
            self.closing = true;
        }
        closes
    }

    /// Attempts to enter `img` into the open wave at time `now_ns`
    /// (the model must have checked that `img` is otherwise idle).
    /// Returns `true` if this entry completed the wave — the caller then
    /// schedules a wave-completion event at `now + allreduce_cost`.
    pub fn try_enter(&mut self, img: usize, now_ns: u64) -> bool {
        if self.terminated
            || self.aborted
            || self.dead[img]
            || self.in_wave[img]
            || !self.detectors[img].ready()
        {
            return false;
        }
        self.in_wave[img] = true;
        self.entered += 1;
        let c = self.detectors[img].enter_wave();
        self.sum[0] += c[0];
        self.sum[1] += c[1];
        self.last_entry_ns = now_ns;
        let closes = self.entered == self.live && !self.closing;
        if closes {
            self.closing = true;
        }
        closes
    }

    /// Completes the wave: every live image exits with the global sum. A
    /// single poisoned participant poisons the verdict — death outranks
    /// even a zero sum.
    pub fn complete_wave(&mut self) -> WaveDecision {
        assert_eq!(self.entered, self.live, "wave completed early");
        self.closing = false;
        let sum = std::mem::take(&mut self.sum);
        self.waves += 1;
        self.entered = 0;
        let mut decision = WaveDecision::Continue;
        let mut poisoned = false;
        for (i, d) in self.detectors.iter_mut().enumerate() {
            if self.dead[i] {
                continue;
            }
            let v = d.exit_wave(sum);
            poisoned |= v == WaveDecision::Poisoned;
            decision = v;
            self.in_wave[i] = false;
        }
        if poisoned {
            decision = WaveDecision::Poisoned;
        }
        match decision {
            WaveDecision::Terminated => self.terminated = true,
            WaveDecision::Poisoned => self.aborted = true,
            WaveDecision::Continue => {}
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_system_terminates_in_one_wave() {
        let mut f = FinishSim::new(3, true);
        assert!(!f.try_enter(0, 10));
        assert!(!f.try_enter(1, 20));
        assert!(f.try_enter(2, 30), "last entrant closes the wave");
        assert_eq!(f.last_entry_ns, 30);
        assert_eq!(f.complete_wave(), WaveDecision::Terminated);
        assert!(f.terminated());
        assert_eq!(f.waves(), 1);
    }

    #[test]
    fn outstanding_message_forces_second_wave() {
        let mut f = FinishSim::new(2, true);
        let tag = f.on_send(0);
        // Image 1 idle, enters. Image 0 not ready (unacked send).
        assert!(!f.try_enter(1, 0));
        assert!(!f.try_enter(0, 0));
        // Message lands & completes at 1; ack returns to 0.
        f.on_receive(1, tag);
        f.on_complete(1, tag);
        f.on_delivered(0);
        assert!(f.try_enter(0, 5), "now ready; wave closes");
        // Image 1 entered before the completion was counted in its even
        // epoch? It entered at t=0 with contribution 0; image 0
        // contributes sent−completed = 1 → sum ≠ 0 → continue… unless
        // image 1's counts landed pre-entry. Either way the protocol
        // must terminate within two waves.
        let d1 = f.complete_wave();
        if d1 == WaveDecision::Continue {
            assert!(!f.try_enter(0, 10) && f.try_enter(1, 10) || f.try_enter(0, 10));
            while !f.in_wave(0) {
                f.try_enter(0, 11);
            }
            while !f.in_wave(1) {
                f.try_enter(1, 11);
            }
            assert_eq!(f.complete_wave(), WaveDecision::Terminated);
        }
        assert!(f.terminated());
        assert!(f.waves() <= 2);
    }

    #[test]
    fn loose_detector_enters_despite_outstanding_sends() {
        let mut f = FinishSim::new(2, false);
        let _tag = f.on_send(0);
        assert!(!f.try_enter(0, 0), "first entrant doesn't close");
        assert!(f.try_enter(1, 0));
        // Sum sees the un-completed send → continue.
        assert_eq!(f.complete_wave(), WaveDecision::Continue);
    }

    #[test]
    #[should_panic(expected = "wave completed early")]
    fn early_completion_is_rejected() {
        let mut f = FinishSim::new(2, true);
        f.try_enter(0, 0);
        f.complete_wave();
    }

    #[test]
    fn dead_image_is_excluded_and_poison_wins_the_wave() {
        let mut f = FinishSim::new(3, true);
        // Image 2 has an outstanding send (to nobody who will ack it —
        // it is about to die), so without exclusion no wave could close.
        f.on_send(2);
        assert!(!f.try_enter(0, 0));
        assert!(!f.try_enter(2, 0), "unacked send blocks the victim");
        // Death observed: membership shrinks, survivors poisoned.
        assert!(!f.mark_dead(2), "image 1 has not entered yet");
        assert_eq!(f.live(), 2);
        f.poison(0, 2);
        f.poison(1, 2);
        assert!(f.try_enter(1, 5), "last live entrant closes the wave");
        assert_eq!(f.complete_wave(), WaveDecision::Poisoned);
        assert!(f.aborted());
        assert!(!f.terminated());
        assert!(!f.try_enter(0, 10), "no waves after the abort");
    }

    #[test]
    fn death_of_the_last_straggler_closes_the_open_wave() {
        let mut f = FinishSim::new(3, true);
        f.on_send(2); // the victim's unacked send keeps it out
        assert!(!f.try_enter(0, 0));
        assert!(!f.try_enter(1, 0), "two of three: wave stays open");
        f.poison(0, 2);
        f.poison(1, 2);
        assert!(f.mark_dead(2), "removal completes the wave");
        assert!(!f.mark_dead(2), "second report must not close it again");
        assert_eq!(f.complete_wave(), WaveDecision::Poisoned);
    }

    #[test]
    fn victim_already_in_wave_is_backed_out() {
        let mut f = FinishSim::new(3, true);
        assert!(!f.try_enter(2, 0), "quiescent victim enters early");
        assert!(!f.try_enter(0, 1));
        f.poison(0, 2);
        f.poison(1, 2);
        assert!(!f.mark_dead(2), "image 1 still outside");
        assert!(f.try_enter(1, 2));
        assert_eq!(f.complete_wave(), WaveDecision::Poisoned);
    }
}
