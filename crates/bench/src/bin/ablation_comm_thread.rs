//! **Ablation**: dedicated communication thread vs. inline communication
//! (paper §III-B's discussion).
//!
//! GASNet completes local data before a non-blocking call returns, which
//! leaves `cofence` nothing to overlap; the paper proposes dedicating a
//! communication thread per image (viable on BG/Q- and MIC-class nodes).
//! This ablation measures the producer loop under both modes: with
//! `CommMode::Inline` the snapshot happens at initiation, so cofence
//! degenerates; with `CommMode::DedicatedThread` initiation is a cheap
//! enqueue and the producer overlaps the snapshot with its next
//! `produce`.

use std::time::Instant;

use bench::print_table;
use caf_runtime::{CommMode, CopyEvents, NetworkModel, Runtime, RuntimeConfig};

fn run(mode: CommMode, iters: u64, words: usize) -> f64 {
    let cfg = RuntimeConfig {
        comm_mode: mode,
        network: NetworkModel {
            // Unbounded inboxes: Inline mode may not combine with
            // bounded-inbox flow control (see CommMode docs).
            inbox_capacity: None,
            ..NetworkModel::slow_cluster()
        },
        ..RuntimeConfig::default()
    };
    let p = 4;
    let times = Runtime::launch(p, cfg, |img| {
        let w = img.world();
        let dst = img.coarray(&w, words, 0u64);
        let src = caf_runtime::LocalArray::new(vec![1u64; words]);
        img.barrier(&w);
        let t0 = Instant::now();
        if img.id().index() == 0 {
            for i in 0..iters {
                let target = img.image(1 + (i as usize % (p - 1)));
                img.copy_async_from(
                    dst.slice(target, 0..words),
                    &src,
                    0..words,
                    CopyEvents::none(),
                );
                img.cofence();
                // "produce": touch the whole buffer.
                src.with(|b| {
                    for v in b.iter_mut() {
                        *v = v.wrapping_mul(31).wrapping_add(i);
                    }
                });
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        img.barrier(&w);
        dt
    });
    times[0]
}

fn main() {
    let iters = 3_000u64;
    let mut rows = Vec::new();
    for words in [16usize, 256, 4096] {
        let inline = run(CommMode::Inline, iters, words);
        let thread = run(CommMode::DedicatedThread, iters, words);
        rows.push(vec![
            format!("{} B", words * 8),
            format!("{:.1} ms", inline * 1e3),
            format!("{:.1} ms", thread * 1e3),
            format!("{:.2}x", inline / thread),
        ]);
    }
    print_table(
        &format!("Comm-thread ablation ({iters} iterations of copy_async + cofence + produce)"),
        &["payload", "inline (GASNet-like)", "dedicated comm thread", "speedup"],
        &rows,
    );
    println!(
        "With inline communication the initiating thread pays the snapshot+injection before \
         returning; the dedicated thread overlaps it with the next produce — the paper's \
         motivation for communication offload on many-thread nodes."
    );
}
