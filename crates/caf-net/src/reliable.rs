//! Reliable ack/retry delivery: the machinery [`Fabric`](crate::Fabric)
//! switches on when a fault plan is active.
//!
//! Design constraints:
//!
//! * Payloads are **not `Clone`** (active messages carry `Box<dyn FnOnce>`
//!   closures), so a retransmission cannot copy the message. Instead every
//!   reliable send allocates one shared *payload slot*
//!   (`Arc<Mutex<Option<M>>>`); the original, duplicates, and retransmits
//!   all point at it, and the first copy to arrive fresh takes the value.
//!   Later copies are filtered by sequence-number dedup before they would
//!   touch the (now empty) slot.
//! * The fabric has **no progress thread**. Retransmission timers are
//!   pumped lazily from the sending image's own fabric calls (`send`,
//!   `try_recv`, `recv_until`, `wait_activity`) — the same polling
//!   discipline GASNet imposes — and park deadlines are clamped to the
//!   next retry due-time so a blocked sender still retransmits promptly.
//! * Delivery remains **unordered**: the runtime already tolerates
//!   non-FIFO channels, so the layer restores *exactly-once* but not
//!   ordering (no reorder buffer; the dedup tracker just remembers which
//!   sequence numbers it has seen).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use caf_core::ids::ImageId;
use parking_lot::Mutex;

/// Simulated size of a protocol acknowledgement, in bytes.
pub(crate) const ACK_BYTES: usize = 16;

/// Simulated size of a heartbeat frame, in bytes.
pub(crate) const HEARTBEAT_BYTES: usize = 8;

/// The on-the-wire envelope carried by inboxes.
pub(crate) enum Wire<M> {
    /// Fast path (fault layer off, or self-send): the bare message.
    Raw(M),
    /// Reliable payload transmission. Retransmits and injected duplicates
    /// share `payload`; whoever arrives fresh takes it.
    Data {
        /// Sending image (the ack's destination).
        from: ImageId,
        /// Per-(sender, receiver) sequence number.
        link_seq: u64,
        /// Shared single-use payload slot.
        payload: Arc<Mutex<Option<M>>>,
    },
    /// Receiver → sender acknowledgement of `link_seq`.
    Ack {
        /// Acknowledging image (the data's receiver).
        from: ImageId,
        /// Sequence number being acknowledged.
        link_seq: u64,
    },
    /// Unacknowledged keep-alive pumped on idle links when failure
    /// detection is engaged. Best-effort: heartbeats roll the same fault
    /// dice as data (a dropped heartbeat is how false suspects happen).
    Heartbeat {
        /// The image proving it is alive.
        from: ImageId,
        /// The sender's incarnation number; receivers use it for the
        /// posthumous filter.
        incarnation: u64,
    },
}

impl<M> Wire<M> {
    /// Clones protocol envelopes (for injected duplicates). `Raw` is not
    /// cloneable — raw messages never traverse the fault layer.
    pub(crate) fn clone_protocol(&self) -> Option<Wire<M>> {
        match self {
            Wire::Raw(_) => None,
            Wire::Data { from, link_seq, payload } => {
                Some(Wire::Data { from: *from, link_seq: *link_seq, payload: Arc::clone(payload) })
            }
            Wire::Ack { from, link_seq } => Some(Wire::Ack { from: *from, link_seq: *link_seq }),
            Wire::Heartbeat { from, incarnation } => {
                Some(Wire::Heartbeat { from: *from, incarnation: *incarnation })
            }
        }
    }
}

/// One unacknowledged reliable transmission, owned by its sender.
pub(crate) struct Outstanding<M> {
    pub link_seq: u64,
    pub payload: Arc<Mutex<Option<M>>>,
    pub bytes: usize,
    /// Transmissions so far (1 = the original send).
    pub attempts: u32,
    pub next_retry: Instant,
}

/// Per-sending-image retry state: sequence allocators and outstanding
/// queues, one slot per destination.
pub(crate) struct SenderState<M> {
    pub next_seq: Vec<u64>,
    pub outstanding: Vec<VecDeque<Outstanding<M>>>,
}

impl<M> SenderState<M> {
    pub(crate) fn new(n: usize) -> Self {
        SenderState { next_seq: vec![0; n], outstanding: (0..n).map(|_| VecDeque::new()).collect() }
    }

    /// Total unacknowledged messages across all destinations.
    pub(crate) fn backlog(&self) -> usize {
        self.outstanding.iter().map(|q| q.len()).sum()
    }

    /// Earliest pending retransmission deadline, if any.
    pub(crate) fn next_retry_at(&self) -> Option<Instant> {
        self.outstanding.iter().flat_map(|q| q.iter().map(|o| o.next_retry)).min()
    }
}

pub(crate) use caf_core::fault::SeqTracker;

/// Per-receiving-image dedup state: one tracker per sender.
pub(crate) struct RecvState {
    pub trackers: Vec<SeqTracker>,
}

impl RecvState {
    pub(crate) fn new(n: usize) -> Self {
        RecvState { trackers: (0..n).map(|_| SeqTracker::default()).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accepts_each_seq_once() {
        let mut t = SeqTracker::default();
        assert!(t.note(0));
        assert!(!t.note(0));
        assert!(t.note(1));
        assert!(!t.note(1));
        assert!(!t.note(0));
    }

    #[test]
    fn tracker_handles_out_of_order_and_gaps() {
        let mut t = SeqTracker::default();
        assert!(t.note(3));
        assert!(t.note(1));
        assert!(!t.note(3), "re-delivery ahead of watermark");
        assert!(t.note(0));
        assert!(!t.note(1), "absorbed into watermark by now");
        assert!(t.note(2));
        assert!(!t.note(3), "watermark passed it");
        assert!(t.note(4));
    }
}
