//! The explorable protocol world: one finish block over `p` images,
//! driven transition-by-transition.
//!
//! The world is a small-step operational model of exactly the protocol
//! the threaded runtime executes: root spawns are sent before the finish
//! starts closing; every message is delivered, acknowledged, and executed
//! as three separately schedulable transitions; executing a message
//! spawns its children; each image asynchronously enters a reduction wave
//! when its detector is ready, and the wave closes (the allreduce) once
//! every live image has entered. Images keep receiving and executing
//! messages while a wave is open — the interleavings this creates are
//! where epoch-parity bugs live.
//!
//! Transition identities ([`TKey`]) are path-based and schedule-stable:
//! the `k`-th root message is `r<k>`, the `j`-th child of message `P` is
//! `P.<j>`. A schedule (a list of keys) therefore replays bit-identically
//! regardless of the order the explorer discovered it in.
//!
//! Safety, agreement, liveness, and livelock oracles are evaluated
//! *inside* [`World::step`] against ground truth the world keeps for
//! itself (message counts, poison deliveries, causal depths) — never
//! against the detector under test.

use std::collections::BTreeMap;
use std::fmt;

use caf_core::ids::Parity;
use caf_core::termination::harness::SpawnTree;
use caf_core::termination::{Contribution, WaveDecision, WaveDetector};

use crate::mutation::{CheckedDetector, Family, Mutation};
use crate::scenario::Scenario;
use crate::vc::VectorClock;

/// Stable identity of one schedulable transition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TKey {
    /// Deliver message `id` at its target (counts the reception).
    Deliver(String),
    /// Deliver the acknowledgement of message `id` back to its sender.
    Ack(String),
    /// Execute message `id` at its target: spawn its children, then
    /// count local completion.
    Exec(String),
    /// Image enters the open reduction wave.
    Enter(usize),
    /// Close the wave: sum live contributions, every live image exits.
    Close,
    /// Fail-stop the scenario's victim.
    Crash(usize),
    /// Deliver the victim's death notice to one survivor.
    Poison(usize),
}

impl fmt::Display for TKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TKey::Deliver(id) => write!(f, "deliver {id}"),
            TKey::Ack(id) => write!(f, "ack {id}"),
            TKey::Exec(id) => write!(f, "exec {id}"),
            TKey::Enter(i) => write!(f, "enter {i}"),
            TKey::Close => write!(f, "close"),
            TKey::Crash(v) => write!(f, "crash {v}"),
            TKey::Poison(i) => write!(f, "poison {i}"),
        }
    }
}

impl TKey {
    /// Parses the [`fmt::Display`] form.
    pub fn parse(s: &str) -> Result<TKey, String> {
        let (verb, rest) = s.split_once(' ').unwrap_or((s, ""));
        let arg = || -> Result<usize, String> {
            rest.trim()
                .parse()
                .map_err(|e| format!("bad transition argument in {s:?}: {e}"))
        };
        match verb {
            "deliver" => Ok(TKey::Deliver(rest.trim().to_string())),
            "ack" => Ok(TKey::Ack(rest.trim().to_string())),
            "exec" => Ok(TKey::Exec(rest.trim().to_string())),
            "enter" => Ok(TKey::Enter(arg()?)),
            "close" => Ok(TKey::Close),
            "crash" => Ok(TKey::Crash(arg()?)),
            "poison" => Ok(TKey::Poison(arg()?)),
            _ => Err(format!("unknown transition {s:?}")),
        }
    }
}

/// One in-flight or executing message.
#[derive(Debug, Clone)]
struct Msg {
    from: usize,
    to: usize,
    tag: Parity,
    children: Vec<SpawnTree>,
    delivered: bool,
    execed: bool,
    acked: bool,
    /// Sender's vector clock at send time.
    clock: VectorClock,
    /// Causal chain depth (roots are 1).
    depth: usize,
}

/// One message-level step, recorded for the differential and DES replay
/// oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgStep {
    /// `from` sent `id` to `to`.
    Send {
        /// Message id.
        id: String,
        /// Sender.
        from: usize,
        /// Target.
        to: usize,
    },
    /// `id` was delivered (reception counted) at `to`.
    Deliver {
        /// Message id.
        id: String,
        /// Target.
        to: usize,
    },
    /// `id` finished executing at `to`.
    Exec {
        /// Message id.
        id: String,
        /// Target.
        to: usize,
    },
    /// `id`'s delivery ack arrived back at `from`.
    Ack {
        /// Message id.
        id: String,
        /// Original sender.
        from: usize,
    },
}

/// Cumulative `[sent, delivered, received, completed]` of one image right
/// after a message step touched it (both parities summed) — the counter
/// history the DES replay must reproduce.
pub type CounterSnapshot = (usize, [u64; 4]);

/// How a finished world ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every live image decided `Terminated` in the same wave.
    Terminated,
    /// Some image exited a wave `Poisoned`; the finish aborted.
    Aborted,
}

/// What an oracle caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Termination declared while a message had not completed, or by an
    /// image that had been told about a crash.
    Safety,
    /// The strict epoch detector exceeded Theorem 1's `L + 1` waves.
    Liveness,
    /// Live images disagreed on a wave decision.
    Agreement,
    /// No transition enabled, yet the finish neither terminated nor
    /// aborted.
    Deadlock,
    /// Waves keep running with no message activity left to change the sum.
    Livelock,
    /// Detector families disagreed on the verdict for one trace.
    Differential,
    /// The DES replay produced a different counter history.
    DesMismatch,
    /// A cofence let a fenced pass-class cross downward.
    CofenceDown,
    /// A cofence admitted a fenced pass-class upward.
    CofenceUp,
    /// A captured runtime trace failed validation.
    Capture,
}

impl ViolationKind {
    /// Stable name used in replay files (`expect <name>`).
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Safety => "safety",
            ViolationKind::Liveness => "liveness",
            ViolationKind::Agreement => "agreement",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Livelock => "livelock",
            ViolationKind::Differential => "differential",
            ViolationKind::DesMismatch => "des-mismatch",
            ViolationKind::CofenceDown => "cofence-down",
            ViolationKind::CofenceUp => "cofence-up",
            ViolationKind::Capture => "capture",
        }
    }

    /// Parses [`ViolationKind::name`].
    pub fn parse(s: &str) -> Result<ViolationKind, String> {
        [
            ViolationKind::Safety,
            ViolationKind::Liveness,
            ViolationKind::Agreement,
            ViolationKind::Deadlock,
            ViolationKind::Livelock,
            ViolationKind::Differential,
            ViolationKind::DesMismatch,
            ViolationKind::CofenceDown,
            ViolationKind::CofenceUp,
            ViolationKind::Capture,
        ]
        .into_iter()
        .find(|k| k.name() == s)
        .ok_or_else(|| format!("unknown violation kind {s:?}"))
    }
}

/// A concrete oracle violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which oracle fired.
    pub kind: ViolationKind,
    /// Human-readable evidence.
    pub detail: String,
}

/// The world: one finish block, mid-schedule.
#[derive(Debug, Clone)]
pub struct World {
    n: usize,
    family: Family,
    dets: Vec<CheckedDetector>,
    msgs: BTreeMap<String, Msg>,
    entered: Vec<bool>,
    contributions: Vec<Contribution>,
    alive: Vec<bool>,
    crash_victim: Option<usize>,
    crashed: bool,
    poison_pending: Vec<bool>,
    waves: usize,
    wave_budget: usize,
    theorem_bound: usize,
    quiet_continue_streak: usize,
    /// Set when the wave budget was exhausted: the branch is an unfair
    /// schedule, pruned rather than reported.
    pub pruned: bool,
    /// Terminal outcome, once reached.
    pub done: Option<Outcome>,
    clocks: Vec<VectorClock>,
    max_causal_depth: usize,
    msg_trace: Vec<MsgStep>,
    history: Vec<CounterSnapshot>,
    schedule: Vec<TKey>,
}

impl World {
    /// A fresh world for `scenario`, driving `family` detectors with an
    /// optional seeded `mutation`. Root messages are sent immediately
    /// (they precede the finish's closing waves, as in the runtime).
    pub fn new(scenario: &Scenario, family: Family, mutation: Option<Mutation>) -> World {
        let n = scenario.images;
        let theorem_bound = scenario.longest_chain() + 1;
        let mut w = World {
            n,
            family,
            dets: (0..n).map(|_| CheckedDetector::new(family, mutation)).collect(),
            msgs: BTreeMap::new(),
            entered: vec![false; n],
            contributions: vec![[0, 0]; n],
            alive: vec![true; n],
            crash_victim: scenario.crash,
            crashed: false,
            poison_pending: vec![false; n],
            waves: 0,
            wave_budget: theorem_bound + 3,
            theorem_bound,
            quiet_continue_streak: 0,
            pruned: false,
            done: None,
            clocks: (0..n).map(|_| VectorClock::new(n)).collect(),
            max_causal_depth: 0,
            msg_trace: Vec::new(),
            history: Vec::new(),
            schedule: Vec::new(),
        };
        for (k, (from, tree)) in scenario.roots.iter().enumerate() {
            assert!(*from < n && tree.target < n, "scenario rank out of range");
            w.send(format!("r{k}"), *from, tree.clone(), 1);
        }
        w
    }

    /// Number of images.
    pub fn images(&self) -> usize {
        self.n
    }

    /// Waves closed so far.
    pub fn waves(&self) -> usize {
        self.waves
    }

    /// The schedule applied so far.
    pub fn schedule(&self) -> &[TKey] {
        &self.schedule
    }

    /// The ordered message steps (for the differential/DES oracles).
    pub fn msg_trace(&self) -> &[MsgStep] {
        &self.msg_trace
    }

    /// The recorded counter history (epoch families only).
    pub fn history(&self) -> &[CounterSnapshot] {
        &self.history
    }

    /// Deepest causal message chain created so far.
    pub fn max_causal_depth(&self) -> usize {
        self.max_causal_depth
    }

    /// Detector family this world drives.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Whether the crash transition has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    fn send(&mut self, id: String, from: usize, tree: SpawnTree, depth: usize) {
        let tag = self.dets[from].on_send();
        self.clocks[from].tick(from);
        self.max_causal_depth = self.max_causal_depth.max(depth);
        self.msg_trace.push(MsgStep::Send { id: id.clone(), from, to: tree.target });
        self.snapshot(from);
        if !self.alive[tree.target] {
            // Posthumous send: the sender counted it, the wire drops it.
            return;
        }
        let msg = Msg {
            from,
            to: tree.target,
            tag,
            children: tree.children,
            delivered: false,
            execed: false,
            acked: false,
            clock: self.clocks[from].clone(),
            depth,
        };
        let prev = self.msgs.insert(id, msg);
        debug_assert!(prev.is_none(), "duplicate message id");
    }

    fn snapshot(&mut self, image: usize) {
        if let Some(c) = self.dets[image].epoch_counters() {
            self.history.push((image, c));
        }
    }

    /// Every transition currently enabled, in deterministic order.
    pub fn enabled(&self) -> Vec<TKey> {
        let mut out = Vec::new();
        if self.done.is_some() || self.pruned {
            return out;
        }
        for (id, m) in &self.msgs {
            if !m.delivered {
                out.push(TKey::Deliver(id.clone()));
            }
            if m.delivered && !m.acked && self.alive[m.from] {
                out.push(TKey::Ack(id.clone()));
            }
            if m.delivered && !m.execed {
                out.push(TKey::Exec(id.clone()));
            }
        }
        for i in 0..self.n {
            if self.alive[i] && !self.entered[i] && self.dets[i].ready() {
                out.push(TKey::Enter(i));
            }
        }
        if (0..self.n).filter(|&i| self.alive[i]).count() > 0
            && (0..self.n).all(|i| !self.alive[i] || self.entered[i])
        {
            out.push(TKey::Close);
        }
        if let Some(v) = self.crash_victim {
            if !self.crashed {
                out.push(TKey::Crash(v));
            }
        }
        for i in 0..self.n {
            if self.poison_pending[i] && self.alive[i] {
                out.push(TKey::Poison(i));
            }
        }
        out
    }

    /// Images this transition touches; `None` means it is global (and
    /// therefore dependent with everything).
    pub fn touch(&self, key: &TKey) -> Option<Vec<usize>> {
        match key {
            TKey::Deliver(id) | TKey::Exec(id) => self.msgs.get(id).map(|m| vec![m.to]),
            TKey::Ack(id) => self.msgs.get(id).map(|m| vec![m.from]),
            TKey::Enter(i) | TKey::Poison(i) => Some(vec![*i]),
            TKey::Close | TKey::Crash(_) => None,
        }
    }

    /// Whether two currently enabled transitions are independent (they
    /// commute and neither can disable the other): disjoint image touch
    /// sets, neither global.
    pub fn independent(&self, a: &TKey, b: &TKey) -> bool {
        match (self.touch(a), self.touch(b)) {
            (Some(ta), Some(tb)) => ta.iter().all(|i| !tb.contains(i)),
            _ => false,
        }
    }

    /// Applies one transition. Returns an oracle violation if the step
    /// exposed one. Panics if the key is not enabled (use
    /// [`World::step_if_enabled`] for guided replay).
    pub fn step(&mut self, key: &TKey) -> Result<(), Violation> {
        assert!(self.try_step(key), "transition {key} is not enabled");
        self.schedule.push(key.clone());
        self.apply(key)
    }

    /// Guided-replay step: applies the key if enabled, otherwise reports
    /// `Ok(false)` without changing anything.
    pub fn step_if_enabled(&mut self, key: &TKey) -> Result<bool, Violation> {
        if !self.try_step(key) {
            return Ok(false);
        }
        self.schedule.push(key.clone());
        self.apply(key).map(|()| true)
    }

    fn try_step(&self, key: &TKey) -> bool {
        self.enabled().contains(key)
    }

    fn apply(&mut self, key: &TKey) -> Result<(), Violation> {
        match key {
            TKey::Deliver(id) => {
                let (to, tag, clock) = {
                    let m = &self.msgs[id];
                    (m.to, m.tag, m.clock.clone())
                };
                self.dets[to].on_receive(tag);
                self.clocks[to].join(&clock);
                self.clocks[to].tick(to);
                debug_assert!(clock.le(&self.clocks[to]), "delivery clock must dominate send");
                self.msgs.get_mut(id).unwrap().delivered = true;
                self.msg_trace.push(MsgStep::Deliver { id: id.clone(), to });
                self.snapshot(to);
                Ok(())
            }
            TKey::Ack(id) => {
                let (from, tag) = {
                    let m = &self.msgs[id];
                    (m.from, m.tag)
                };
                self.dets[from].on_delivered(tag);
                self.msgs.get_mut(id).unwrap().acked = true;
                self.msg_trace.push(MsgStep::Ack { id: id.clone(), from });
                self.snapshot(from);
                self.retire(id);
                Ok(())
            }
            TKey::Exec(id) => {
                let (to, tag, children, depth) = {
                    let m = &self.msgs[id];
                    (m.to, m.tag, m.children.clone(), m.depth)
                };
                for (j, child) in children.into_iter().enumerate() {
                    self.send(format!("{id}.{j}"), to, child, depth + 1);
                }
                self.dets[to].on_complete(tag);
                self.msgs.get_mut(id).unwrap().execed = true;
                self.msg_trace.push(MsgStep::Exec { id: id.clone(), to });
                self.snapshot(to);
                self.retire(id);
                Ok(())
            }
            TKey::Enter(i) => {
                let c = self.dets[*i].enter_wave();
                self.entered[*i] = true;
                self.contributions[*i] = c;
                Ok(())
            }
            TKey::Close => self.close_wave(),
            TKey::Crash(v) => {
                self.crash(*v);
                Ok(())
            }
            TKey::Poison(i) => {
                let v = self.crash_victim.expect("poison without a crash");
                self.dets[*i].poison(v);
                self.poison_pending[*i] = false;
                Ok(())
            }
        }
    }

    fn retire(&mut self, id: &str) {
        let m = &self.msgs[id];
        if m.execed && m.acked {
            self.msgs.remove(id);
        }
    }

    fn crash(&mut self, v: usize) {
        self.alive[v] = false;
        self.crashed = true;
        // Fail-stop: in-flight traffic to or from the victim is gone;
        // messages already delivered elsewhere still execute there, and
        // their acks-to-the-dead are silently discarded.
        self.msgs.retain(|_, m| {
            if m.to == v {
                return false;
            }
            if m.from == v && !m.delivered {
                return false;
            }
            true
        });
        let ids: Vec<String> = self
            .msgs
            .iter()
            .filter(|(_, m)| m.from == v && !m.acked)
            .map(|(id, _)| id.clone())
            .collect();
        for id in ids {
            self.msgs.get_mut(&id).unwrap().acked = true;
            self.retire(&id);
        }
        for i in 0..self.n {
            self.poison_pending[i] = self.alive[i] && i != v;
        }
    }

    fn close_wave(&mut self) -> Result<(), Violation> {
        let mut sum: Contribution = [0, 0];
        for i in 0..self.n {
            if self.alive[i] {
                sum[0] += self.contributions[i][0];
                sum[1] += self.contributions[i][1];
            }
        }
        self.waves += 1;
        let mut decisions: Vec<(usize, WaveDecision)> = Vec::new();
        for i in 0..self.n {
            if self.alive[i] {
                decisions.push((i, self.dets[i].exit_wave(sum)));
            }
            self.entered[i] = false;
            self.contributions[i] = [0, 0];
        }

        // --- Oracles, against the world's own ground truth. ---
        let outstanding = self.msgs.values().filter(|m| !m.execed).count();
        let clean: Vec<&(usize, WaveDecision)> =
            decisions.iter().filter(|(_, d)| *d != WaveDecision::Poisoned).collect();

        // Agreement: every non-poisoned live image must reach the same
        // decision (they all saw the same sum).
        if let Some(((i0, d0), rest)) = clean.split_first() {
            for (i, d) in rest {
                if d != d0 {
                    return Err(Violation {
                        kind: ViolationKind::Agreement,
                        detail: format!(
                            "wave {}: image {i0} decided {d0:?} but image {i} decided {d:?} \
                             (sum {sum:?})",
                            self.waves
                        ),
                    });
                }
            }
        }

        for (i, d) in &decisions {
            if *d != WaveDecision::Terminated {
                continue;
            }
            if let Some(v) = self.dets[*i].poison_seen() {
                return Err(Violation {
                    kind: ViolationKind::Safety,
                    detail: format!(
                        "wave {}: image {i} declared clean termination after being told \
                         image {v} fail-stopped",
                        self.waves
                    ),
                });
            }
            // Crash runs legitimately race: a survivor not yet told about
            // the crash can see a zero sum (the victim's contribution
            // vanished from the surviving team's reduction) while the
            // victim's delivered-but-unexecuted work is still pending.
            // The outstanding-message invariant is therefore a crash-free
            // oracle; crash correctness is covered by the poison check
            // above and the abort/deadlock oracles.
            if !self.crashed && outstanding > 0 {
                let pending: Vec<&String> =
                    self.msgs.iter().filter(|(_, m)| !m.execed).map(|(id, _)| id).collect();
                return Err(Violation {
                    kind: ViolationKind::Safety,
                    detail: format!(
                        "wave {}: image {i} declared termination with {outstanding} \
                         message(s) outstanding ({pending:?}, sum {sum:?})",
                        self.waves
                    ),
                });
            }
        }

        // Liveness: Theorem 1 as an executable assertion (strict epoch,
        // crash-free).
        if self.family.theorem1_applies()
            && !self.crashed
            && self.waves > self.theorem_bound
            && decisions.iter().any(|(_, d)| *d == WaveDecision::Continue)
        {
            return Err(Violation {
                kind: ViolationKind::Liveness,
                detail: format!(
                    "wave {} closed without termination, exceeding the Theorem 1 bound \
                     of L + 1 = {} waves (sum {sum:?})",
                    self.waves, self.theorem_bound
                ),
            });
        }

        // Livelock: Continue waves with no message activity left cannot
        // make progress indefinitely. Contributions are snapshotted at
        // enter time, so up to two quiet Continues are legitimate (one
        // wave entered before the drain finished, plus four-counter's
        // unconfirmed first stable wave); a third means the sum is frozen
        // forever.
        let all_continue =
            !decisions.is_empty() && decisions.iter().all(|(_, d)| *d == WaveDecision::Continue);
        if all_continue && self.msgs.is_empty() && !self.crashed {
            self.quiet_continue_streak += 1;
            if self.quiet_continue_streak >= 3 {
                return Err(Violation {
                    kind: ViolationKind::Livelock,
                    detail: format!(
                        "waves {}..{} all continued with no messages in flight: \
                         the reduction sum ({sum:?}) can never change",
                        self.waves - 2,
                        self.waves
                    ),
                });
            }
        } else {
            self.quiet_continue_streak = 0;
        }

        if decisions.iter().any(|(_, d)| *d == WaveDecision::Poisoned) {
            self.done = Some(Outcome::Aborted);
        } else if !decisions.is_empty()
            && decisions.iter().all(|(_, d)| *d == WaveDecision::Terminated)
        {
            self.done = Some(Outcome::Terminated);
        } else if self.waves >= self.wave_budget {
            // Out of budget without a verdict: an unfair schedule (waves
            // starving message progress). Prune, don't report.
            self.pruned = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_core::termination::harness::node;

    fn chain_scenario(images: usize, targets: &[usize]) -> Scenario {
        Scenario {
            images,
            roots: vec![(0, caf_core::termination::harness::chain(targets))],
            crash: None,
        }
    }

    /// Run first-enabled transitions to a terminal state.
    fn run_first_enabled(w: &mut World) -> Option<Violation> {
        for _ in 0..10_000 {
            let enabled = w.enabled();
            let k = enabled.first().cloned()?;
            if let Err(v) = w.step(&k) {
                return Some(v);
            }
        }
        panic!("world did not quiesce");
    }

    #[test]
    fn empty_finish_terminates_in_one_wave() {
        let mut w = World::new(&Scenario::empty(3), Family::EpochStrict, None);
        assert!(run_first_enabled(&mut w).is_none());
        assert_eq!(w.done, Some(Outcome::Terminated));
        assert_eq!(w.waves(), 1);
    }

    #[test]
    fn chain_respects_theorem_bound_on_first_enabled_schedule() {
        let s = chain_scenario(3, &[1, 2]);
        let mut w = World::new(&s, Family::EpochStrict, None);
        assert!(run_first_enabled(&mut w).is_none());
        assert_eq!(w.done, Some(Outcome::Terminated));
        assert!(w.waves() <= 3, "L=2 must need ≤ 3 waves, got {}", w.waves());
        assert_eq!(w.max_causal_depth(), 2);
    }

    #[test]
    fn four_counter_needs_the_confirmation_wave() {
        let mut w = World::new(&Scenario::empty(2), Family::FourCounter, None);
        assert!(run_first_enabled(&mut w).is_none());
        assert_eq!(w.done, Some(Outcome::Terminated));
        assert_eq!(w.waves(), 2);
    }

    #[test]
    fn crash_run_aborts_poisoned() {
        let mut s = chain_scenario(3, &[1, 2]);
        s.crash = Some(1);
        let mut w = World::new(&s, Family::EpochStrict, None);
        // Crash first, then run everything else.
        w.step(&TKey::Crash(1)).unwrap();
        assert!(run_first_enabled(&mut w).is_none());
        assert_eq!(w.done, Some(Outcome::Aborted));
    }

    #[test]
    fn schedules_replay_deterministically() {
        let s = chain_scenario(3, &[1, 2]);
        let mut a = World::new(&s, Family::EpochStrict, None);
        assert!(run_first_enabled(&mut a).is_none());
        let mut b = World::new(&s, Family::EpochStrict, None);
        for k in a.schedule().to_vec() {
            b.step(&k).unwrap();
        }
        assert_eq!(b.done, a.done);
        assert_eq!(b.waves(), a.waves());
        assert_eq!(b.msg_trace(), a.msg_trace());
    }

    #[test]
    fn touch_sets_drive_independence() {
        let s = Scenario {
            images: 4,
            roots: vec![(0, node(1, vec![])), (2, node(3, vec![]))],
            crash: None,
        };
        let w = World::new(&s, Family::EpochStrict, None);
        let d0 = TKey::Deliver("r0".into());
        let d1 = TKey::Deliver("r1".into());
        assert!(w.independent(&d0, &d1), "deliveries at distinct images commute");
        assert!(!w.independent(&d0, &TKey::Enter(1)), "same-image transitions conflict");
        assert!(w.independent(&d0, &TKey::Enter(2)));
        assert!(!w.independent(&d0, &TKey::Close), "close is global");
    }

    #[test]
    fn tkey_round_trips_through_text() {
        for k in [
            TKey::Deliver("r0.1".into()),
            TKey::Ack("r2".into()),
            TKey::Exec("r0.0.0".into()),
            TKey::Enter(3),
            TKey::Close,
            TKey::Crash(1),
            TKey::Poison(0),
        ] {
            assert_eq!(TKey::parse(&k.to_string()).unwrap(), k);
        }
    }
}
