//! Configuration shared by the threaded runtime (`caf-runtime`) and the
//! discrete-event simulator (`caf-sim`).
//!
//! The paper's experiments ran on Cray XK6/XE6 machines over GASNet. We
//! substitute a parameterized interconnect model; the parameters below are
//! the levers that determine the *relative* cost of local data completion
//! (`cofence`), local operation completion (events), and global completion
//! (`finish`), which is what Figures 12–14 and 16–18 measure.

use std::sync::Arc;
use std::time::Duration;

pub use crate::failure::FailureParams;
pub use crate::fault::{CrashFault, FaultDecision, FaultPlan, LinkFault, RetryPolicy, StallWindow};

/// Cost model of the simulated interconnect.
///
/// A message of `n` payload bytes sent at time `t` is *delivered* (its
/// active-message handler may run at the target) no earlier than
/// `t + injection_overhead + latency + n * byte_cost`, and the sender's
/// delivery acknowledgement arrives one further `latency` later.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// One-way network latency between any two distinct images.
    pub latency: Duration,
    /// Sender-side cost to inject one message (CPU occupancy).
    pub injection_overhead: Duration,
    /// Per-payload-byte serialization cost (inverse bandwidth).
    pub byte_cost: Duration,
    /// Cost to execute an active-message handler at the target, excluding
    /// the user work the handler performs.
    pub handler_overhead: Duration,
    /// Soft bound on the number of undelivered messages queued at one
    /// target inbox. Senders exceeding it experience backpressure stalls
    /// (models GASNet flow control — the Fig. 14 large-bunch anomaly).
    /// `None` disables backpressure.
    pub inbox_capacity: Option<usize>,
    /// Stall applied to a sender per message while the target inbox is over
    /// capacity.
    pub backpressure_stall: Duration,
    /// Maximum payload of a single medium active message, in bytes
    /// (GASNet `AMMedium`; bounds how much work one steal can carry,
    /// paper §IV-C challenge *a*).
    pub am_medium_payload: usize,
}

impl NetworkModel {
    /// A model loosely calibrated to a Gemini-class interconnect:
    /// ~1.5 µs one-way latency, ~5 GB/s effective bandwidth.
    pub fn gemini_like() -> Self {
        NetworkModel {
            latency: Duration::from_nanos(1_500),
            injection_overhead: Duration::from_nanos(200),
            byte_cost: Duration::from_nanos(0) + Duration::from_nanos(1) / 5,
            handler_overhead: Duration::from_nanos(150),
            inbox_capacity: Some(512),
            backpressure_stall: Duration::from_nanos(3_000),
            am_medium_payload: 504,
        }
    }

    /// A deliberately slow network (tens of µs) that makes latency effects
    /// visible in wall-clock time on a laptop-scale threaded run.
    pub fn slow_cluster() -> Self {
        NetworkModel {
            latency: Duration::from_micros(30),
            injection_overhead: Duration::from_micros(1),
            byte_cost: Duration::from_nanos(2),
            handler_overhead: Duration::from_micros(1),
            inbox_capacity: Some(256),
            backpressure_stall: Duration::from_micros(60),
            am_medium_payload: 504,
        }
    }

    /// Zero-latency model: useful for pure-semantics tests where timing is
    /// irrelevant and the suite should run fast.
    pub fn instant() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            injection_overhead: Duration::ZERO,
            byte_cost: Duration::ZERO,
            handler_overhead: Duration::ZERO,
            inbox_capacity: None,
            backpressure_stall: Duration::ZERO,
            am_medium_payload: 504,
        }
    }

    /// Time for the payload bytes of one message to cross the wire.
    #[inline]
    pub fn wire_time(&self, payload_bytes: usize) -> Duration {
        self.latency + self.byte_cost * payload_bytes as u32
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::gemini_like()
    }
}

/// Where the work between *initiation* and *local data completion* of an
/// asynchronous operation is performed (paper §III-B).
///
/// GASNet completes local data before a non-blocking call returns, which
/// makes `cofence` pointless unless communication is offloaded; the paper
/// proposes dedicating communication threads on platforms with many
/// hardware threads (BG/Q, MIC). Both strategies are provided so the
/// trade-off is measurable (ablation `ablation_comm_thread`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// A dedicated communication thread per image snapshots source buffers
    /// and injects messages; initiation is a cheap descriptor enqueue and
    /// local data completion happens strictly later.
    #[default]
    DedicatedThread,
    /// The initiating thread itself snapshots the source buffer before
    /// `copy_async` returns (GASNet-like): initiation already implies local
    /// data completion, so `cofence` degenerates to a no-op for copies.
    ///
    /// Restriction: may not be combined with a bounded
    /// [`NetworkModel::inbox_capacity`] — inline data-plane sends stall
    /// the image thread under backpressure without draining its inbox,
    /// which can deadlock the whole team. The runtime rejects the
    /// combination at launch.
    Inline,
}

/// Full configuration of a runtime or simulator instance.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Interconnect cost model.
    pub network: NetworkModel,
    /// Communication progress strategy.
    pub comm_mode: CommMode,
    /// Seed for any randomized decisions the runtime itself makes
    /// (e.g. victim selection helpers). Workloads take their own seeds.
    pub seed: u64,
    /// If true, the fabric may deliver messages between the same pair of
    /// images out of order (the termination-detection algorithm must not
    /// assume FIFO channels — paper §III-A2 limitations discussion).
    pub non_fifo: bool,
    /// Whether `finish` waits for local quiescence before each reduction
    /// wave (the paper's algorithm, Fig. 7 line 4). `false` selects the
    /// "algorithm w/o upper bound" baseline of Fig. 18.
    pub finish_wait_quiescence: bool,
    /// Fault-injection schedule. `None` (or an inactive plan) keeps the
    /// fabric on its zero-overhead reliable path; an active plan routes
    /// every remote message through the ack/retry delivery layer and
    /// perturbs it per the plan.
    pub faults: Option<FaultPlan>,
    /// Ack-timeout/retransmission policy of the reliable-delivery layer
    /// (only consulted when `faults` is active).
    pub retry: RetryPolicy,
    /// No-progress watchdog window: if no image makes progress for this
    /// long, the runtime dumps per-image diagnostics and aborts with
    /// `RuntimeError::Stalled` instead of hanging. `None` disables it.
    pub watchdog: Option<Duration>,
    /// Heartbeat-based fail-stop failure detection. When set, the fabric
    /// pumps heartbeats on idle links, suspects then confirms silent
    /// peers, and the runtime converts a confirmed death into
    /// `RuntimeError::ImageFailed` on every survivor instead of hanging
    /// in `finish`/collectives. `None` disables detection (a crashed
    /// image then surfaces only through the watchdog, as a stall).
    pub failure: Option<FailureParams>,
    /// Protocol trace capture. When set, every image records its
    /// detector-relevant `finish` events (sends, delivery acks,
    /// receptions, completions, reduction waves, poison) into the shared
    /// [`crate::trace::TraceRecorder`], producing a linearized schedule
    /// the `caf-check` model checker can validate. `None` (the default)
    /// records nothing and costs nothing.
    pub trace: Option<Arc<crate::trace::TraceRecorder>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            network: NetworkModel::default(),
            comm_mode: CommMode::default(),
            seed: 0x5eed,
            non_fifo: false,
            finish_wait_quiescence: true,
            faults: None,
            retry: RetryPolicy::default(),
            watchdog: None,
            failure: None,
            trace: None,
        }
    }
}

impl RuntimeConfig {
    /// Configuration for fast semantics tests: instant network, inline
    /// communication, deterministic seed.
    pub fn testing() -> Self {
        RuntimeConfig {
            network: NetworkModel::instant(),
            comm_mode: CommMode::Inline,
            ..RuntimeConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes() {
        let m = NetworkModel {
            latency: Duration::from_micros(10),
            byte_cost: Duration::from_nanos(2),
            ..NetworkModel::instant()
        };
        assert_eq!(m.wire_time(0), Duration::from_micros(10));
        assert_eq!(m.wire_time(1000), Duration::from_micros(10) + Duration::from_micros(2));
    }

    #[test]
    fn default_model_has_backpressure() {
        let m = NetworkModel::default();
        assert!(m.inbox_capacity.is_some());
        assert!(m.latency > Duration::ZERO);
    }

    #[test]
    fn instant_model_is_free() {
        let m = NetworkModel::instant();
        assert_eq!(m.wire_time(1 << 20), Duration::ZERO);
    }
}
